// Copyright 2026 MixQ-GNN Authors
#include "engine/batcher.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <utility>

#include "common/fault_injection.h"

namespace mixq {
namespace engine {

namespace {

double MicrosBetween(ServingClock::time_point from, ServingClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Copies the requested logit rows into a fresh tensor (cached logits must
/// never share storage with a caller-visible tensor). Empty ids = all rows,
/// in ORIGINAL node order; duplicate ids each get their own row, in request
/// order. `logits` lives in the graph's internal row order — this gather is
/// the single point where the locality reorder is undone for callers.
Result<Tensor> GatherLogitRows(const Tensor& logits, const std::vector<int64_t>& ids,
                               const GraphContext& graph) {
  const int64_t n = logits.rows();
  const int64_t d = logits.cols();
  if (ids.empty()) {
    if (!graph.reordered()) {
      return Tensor::FromVector(logits.shape(), logits.data());
    }
    Tensor rows = Tensor::Zeros(logits.shape());
    float* dst = rows.data().data();
    const float* src = logits.data().data();
    for (int64_t i = 0; i < n; ++i) {
      std::memcpy(dst + static_cast<size_t>(i) * static_cast<size_t>(d),
                  src + static_cast<size_t>(graph.ToInternal(i)) *
                            static_cast<size_t>(d),
                  static_cast<size_t>(d) * sizeof(float));
    }
    return rows;
  }
  Tensor rows = Tensor::Zeros(Shape(static_cast<int64_t>(ids.size()), d));
  float* dst = rows.data().data();
  const float* src = logits.data().data();
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t id = ids[i];
    if (id < 0 || id >= n) {
      return Status::InvalidArgument("node id " + std::to_string(id) +
                                     " out of range for graph with " +
                                     std::to_string(n) + " nodes");
    }
    std::memcpy(dst + static_cast<size_t>(i) * static_cast<size_t>(d),
                src + static_cast<size_t>(graph.ToInternal(id)) *
                          static_cast<size_t>(d),
                static_cast<size_t>(d) * sizeof(float));
  }
  return rows;
}

/// Gather against a PRUNED forward's output, whose row i holds INTERNAL node
/// targets[i] (sorted unique): each requested id — duplicates included,
/// order preserved — is translated to its internal row and located by binary
/// search. Ids were range-checked at coalescing time and their translations
/// unioned into targets, so lookups cannot miss.
Tensor GatherPrunedRows(const Tensor& pruned, const std::vector<int64_t>& targets,
                        const std::vector<int64_t>& ids,
                        const GraphContext& graph) {
  const int64_t d = pruned.cols();
  Tensor rows = Tensor::Zeros(Shape(static_cast<int64_t>(ids.size()), d));
  float* dst = rows.data().data();
  const float* src = pruned.data().data();
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t internal = graph.ToInternal(ids[i]);
    const auto it = std::lower_bound(targets.begin(), targets.end(), internal);
    MIXQ_CHECK(it != targets.end() && *it == internal);
    const size_t row = static_cast<size_t>(it - targets.begin());
    std::memcpy(dst + i * static_cast<size_t>(d),
                src + row * static_cast<size_t>(d),
                static_cast<size_t>(d) * sizeof(float));
  }
  return rows;
}

}  // namespace

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kAuto: return "auto";
    case Precision::kFp32: return "fp32";
    case Precision::kInt8: return "int8";
  }
  return "unknown";
}

Result<Precision> ResolvePrecision(const CompiledModel& model,
                                   const GraphContext& graph,
                                   Precision requested) {
  // Per-plan pairing: the model's range certificate (per-step symbolic SpMM
  // depth budget, engine/plan_analysis.h) against the graph's precomputed
  // bounds. Replaces the coarse full-scale int8_depth_safe cut — a plan with
  // narrow codes provably serves hub-heavy graphs the old predicate refused.
  const PlanRangeCertificate* cert = model.range_certificate();
  switch (requested) {
    case Precision::kFp32:
      return Precision::kFp32;
    case Precision::kInt8: {
      if (!model.info().lowered_int8) {
        return Status::NotImplemented("model '" + model.info().scheme_label +
                                      "' has no all-integer lowering");
      }
      if (cert == nullptr) {
        return Status::InvalidArgument(
            "model '" + model.info().scheme_label +
            "' has no value-range certificate (range analysis did not accept "
            "its plan); request fp32");
      }
      Status paired = CheckGraphAgainstCertificate(*cert, graph.range_bounds);
      if (!paired.ok()) {
        return Status::InvalidArgument("graph '" + graph.name +
                                       "' fails the int8 pairing check: " +
                                       paired.message());
      }
      return Precision::kInt8;
    }
    case Precision::kAuto:
      return model.info().lowered_int8 && cert != nullptr &&
                     CheckGraphAgainstCertificate(*cert, graph.range_bounds).ok()
                 ? Precision::kInt8
                 : Precision::kFp32;
  }
  return Status::InvalidArgument("unknown precision");
}

Result<Tensor> ForwardFullGraph(const CompiledModel& model,
                                const GraphContext& graph, Precision resolved,
                                PredictScratch* scratch) {
  if (resolved == Precision::kInt8) {
    return model.PredictQuantized(graph.features, graph.op, scratch);
  }
  return model.Predict(graph.features, graph.op, scratch);
}

Batcher::Batcher(Backend backend, BatcherOptions options)
    : backend_(std::move(backend)),
      options_(options),
      queue_(options.queue_capacity),
      watchdog_(options.watchdog_poll.count() > 0
                    ? std::thread([this] { WatchdogLoop(); })
                    : std::thread()),
      dispatcher_([this] { DispatcherLoop(); }) {}

Batcher::~Batcher() {
  queue_.Close();
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<Result<PredictResponse>> Batcher::Submit(PredictRequest request) {
  Pending pending;
  pending.admitted = ServingClock::now();
  std::future<Result<PredictResponse>> future = pending.promise.get_future();
  if (pending.admitted > request.deadline) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    backend_.count_failure();
    pending.promise.set_value(
        Status::DeadlineExceeded("request deadline passed before admission"));
    return future;
  }
  // Chaos hook: an admission-path failure (e.g. the queue's allocator).
  // Typed and fulfilled exactly like every other admission rejection.
  if (fault::ShouldFail("batcher.admit")) {
    backend_.count_failure();
    pending.promise.set_value(
        Status::Internal("injected fault at 'batcher.admit'"));
    return future;
  }
  pending.request = std::move(request);
  if (!queue_.TryPush(std::move(pending))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    backend_.count_failure();
    pending.promise.set_value(Status::ResourceExhausted(
        "serving queue full (capacity " +
        std::to_string(queue_.capacity()) + ") or shut down"));
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

void Batcher::DispatcherLoop() {
  // The dispatcher thread owns the confined state (cache_, scratch_) for its
  // whole life; acquiring the role here is what lets Dispatch/SweepCache
  // declare MIXQ_REQUIRES(dispatcher_role_).
  ThreadRoleHolder role(&dispatcher_role_);
  for (;;) {
    std::vector<Pending> batch = queue_.WaitDrain();
    if (batch.empty()) return;  // closed and fully drained
    Dispatch(std::move(batch));
  }
}

void Batcher::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    watchdog_cv_.wait_for(lock, options_.watchdog_poll,
                          [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const int64_t start = forward_start_ticks_.load(std::memory_order_acquire);
    if (start == 0) continue;  // dispatcher is not inside a forward
    const ServingClock::time_point now = ServingClock::now();
    const ServingClock::duration stalled =
        now - ServingClock::time_point(ServingClock::duration(start));
    if (stalled < options_.max_forward_stall) continue;
    // The dispatcher has been wedged inside one forward past the stall
    // budget: expire queued requests whose deadline already passed so their
    // callers unblock now, not when (if) the forward returns. RemoveIf and
    // the dispatcher's drain serialize on the queue mutex, so each request
    // is fulfilled by exactly one of them.
    std::vector<Pending> dead = queue_.RemoveIf(
        [&](const Pending& pending) { return now > pending.request.deadline; });
    for (Pending& pending : dead) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      watchdog_expired_.fetch_add(1, std::memory_order_relaxed);
      Fail(&pending,
           Status::DeadlineExceeded("request expired while the dispatcher "
                                    "stalled in a forward (watchdog)"),
           nullptr);
    }
  }
}

void Batcher::Fail(Pending* pending, Status status,
                   const ModelCountersPtr& counters) {
  backend_.count_failure();
  if (counters != nullptr) {
    counters->failures.fetch_add(1, std::memory_order_relaxed);
  }
  pending->promise.set_value(std::move(status));
}

void Batcher::Dispatch(std::vector<Pending> batch) {
  in_dispatch_.fetch_add(static_cast<int64_t>(batch.size()),
                         std::memory_order_relaxed);
  const ServingClock::time_point dispatch_start = ServingClock::now();

  // Coalesce: group the drained requests by (model, graph, resolved
  // precision). Registry lookups happen here — once per distinct name, not
  // per request — so hot swaps between admission and dispatch are honoured.
  struct Group {
    ModelHandle handle;
    GraphContextPtr graph;
    Precision resolved = Precision::kFp32;
    bool all_auto = true;  ///< every member asked kAuto (ladder-eligible)
    std::vector<Pending> members;
  };

  // Overload rungs, decided once per drained batch: the drained size is the
  // backlog one forward's latency accumulated, i.e. the live load signal.
  // Thresholds are absolute request counts (not capacity fractions) so
  // small-queue tests and deployments keep exact admission semantics.
  const int64_t drained = static_cast<int64_t>(batch.size());
  const bool degraded = options_.degrade_batch_threshold > 0 &&
                        drained >= options_.degrade_batch_threshold;
  const bool shedding = options_.shed_batch_threshold > 0 &&
                        drained >= options_.shed_batch_threshold;
  const double max_cost_fraction = degraded
                                       ? options_.degraded_max_cost_fraction
                                       : options_.pruned_max_cost_fraction;
  std::map<std::string, Group> groups;
  std::map<std::string, Result<ModelHandle>> model_lookups;
  std::map<std::string, Result<GraphContextPtr>> graph_lookups;

  for (Pending& pending : batch) {
    auto model_it = model_lookups.find(pending.request.model);
    if (model_it == model_lookups.end()) {
      model_it = model_lookups
                     .emplace(pending.request.model,
                              backend_.lookup_model(pending.request.model))
                     .first;
    }
    ModelCountersPtr counters = model_it->second.ok()
                                    ? model_it->second.ValueOrDie().counters
                                    : nullptr;
    if (dispatch_start > pending.request.deadline) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      Fail(&pending, Status::DeadlineExceeded("request expired in queue"), counters);
      continue;
    }
    if (!model_it->second.ok()) {
      Fail(&pending, model_it->second.status(), nullptr);
      continue;
    }
    auto graph_it = graph_lookups.find(pending.request.graph);
    if (graph_it == graph_lookups.end()) {
      graph_it = graph_lookups
                     .emplace(pending.request.graph,
                              backend_.lookup_graph(pending.request.graph))
                     .first;
    }
    if (!graph_it->second.ok()) {
      Fail(&pending, graph_it->second.status(), counters);
      continue;
    }
    const ModelHandle& handle = model_it->second.ValueOrDie();
    const GraphContextPtr& graph = graph_it->second.ValueOrDie();
    Result<Precision> resolved =
        ResolvePrecision(*handle.model, *graph, pending.request.precision);
    if (!resolved.ok()) {
      Fail(&pending, resolved.status(), counters);
      continue;
    }
    // Range-check node ids now, while the graph is resolved: a bad request
    // must not cost (or trigger) the group's shared forward.
    const int64_t num_nodes = graph->features.rows();
    bool ids_ok = true;
    for (int64_t id : pending.request.node_ids) {
      if (id < 0 || id >= num_nodes) {
        Fail(&pending,
             Status::InvalidArgument("node id " + std::to_string(id) +
                                     " out of range for graph '" +
                                     pending.request.graph + "' with " +
                                     std::to_string(num_nodes) + " nodes"),
             counters);
        ids_ok = false;
        break;
      }
    }
    if (!ids_ok) continue;
    std::string key = pending.request.model + '\x1f' + pending.request.graph +
                      '\x1f' + PrecisionName(resolved.ValueOrDie());
    Group& group = groups[key];
    if (group.members.empty()) {
      group.handle = handle;
      group.graph = graph;
      group.resolved = resolved.ValueOrDie();
    }
    group.all_auto =
        group.all_auto && pending.request.precision == Precision::kAuto;
    group.members.push_back(std::move(pending));
  }

  // One forward (or cache gather) per group.
  for (auto& [key, group] : groups) {
    // Deadlines are re-checked per group: an earlier group's forward may
    // have consumed another group's remaining budget.
    const ServingClock::time_point group_start = ServingClock::now();
    std::vector<Pending> live;
    live.reserve(group.members.size());
    for (Pending& pending : group.members) {
      if (group_start > pending.request.deadline) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        Fail(&pending, Status::DeadlineExceeded("request expired in queue"),
             group.handle.counters);
      } else {
        live.push_back(std::move(pending));
      }
    }
    if (live.empty()) continue;

    Tensor logits;
    bool cache_hit = false;
    double forward_us = 0.0;
    // Routing, cheapest first: a valid cache entry is a pure row gather;
    // then a receptive-field-pruned forward when the group asks for few
    // rows of a large graph; the full forward otherwise (and only the full
    // forward's logits are cacheable — a pruned result never fills the
    // cache, it does not cover the graph).
    std::unique_ptr<FrontierProgram> program;
    auto cached = cache_.find(key);
    if (options_.enable_cache && cached != cache_.end() &&
        cached->second.model_version == group.handle.version &&
        cached->second.graph_version == group.graph->version) {
      logits = cached->second.logits;
      cache_hit = true;
      cache_hits_.fetch_add(static_cast<int64_t>(live.size()),
                            std::memory_order_relaxed);
    } else {
      const int64_t num_nodes = group.graph->features.rows();
      if (options_.enable_pruning && group.handle.model->info().lowered &&
          num_nodes >= options_.pruned_min_graph_nodes) {
        // Union of the group's requested rows, translated into the graph's
        // internal order (the frontier analysis and pruned forward see only
        // internal ids); any all-rows request pins the whole graph and
        // keeps the group on the full path.
        std::vector<int64_t> targets;
        bool all_rows = false;
        for (const Pending& pending : live) {
          if (pending.request.node_ids.empty()) {
            all_rows = true;
            break;
          }
          for (const int64_t id : pending.request.node_ids) {
            targets.push_back(group.graph->ToInternal(id));
          }
        }
        if (!all_rows) {
          std::sort(targets.begin(), targets.end());
          targets.erase(std::unique(targets.begin(), targets.end()),
                        targets.end());
          program = group.handle.model->BuildFrontierProgram(
              group.graph->op, std::move(targets),
              group.resolved == Precision::kInt8,
              group.graph->frontier_ws.get(), max_cost_fraction);
        }
      }
      // The shed rung: every cheaper mode was already tried for this group
      // (cache missed, no pruned program, kAuto resolved to fp32 because
      // there is no int8 lowering). Under shedding load the full fp32
      // forward is the one cost that collapses everyone's latency, so kAuto
      // groups give it up with a typed retry-later instead.
      if (shedding && group.all_auto && program == nullptr &&
          group.resolved == Precision::kFp32) {
        shed_.fetch_add(static_cast<int64_t>(live.size()),
                        std::memory_order_relaxed);
        for (Pending& pending : live) {
          Fail(&pending,
               Status::Unavailable(
                   "load shed: serving is overloaded and this kAuto request "
                   "needs a full fp32 forward; retry later"),
               group.handle.counters);
        }
        continue;
      }
      // Circuit breaker: consulted only when a real forward is about to run
      // (cache hits and sheds never touch it), reported right after.
      if (backend_.breaker_admit != nullptr) {
        Status admit = backend_.breaker_admit(live.front().request.model,
                                              live.front().request.graph);
        if (!admit.ok()) {
          for (Pending& pending : live) {
            Fail(&pending, admit, group.handle.counters);
          }
          continue;
        }
      }
      forward_start_ticks_.store(group_start.time_since_epoch().count(),
                                 std::memory_order_release);
      // Second containment boundary (the first wraps the executors inside
      // CompiledModel): anything that still escapes a group forward fails
      // this group's futures, never the dispatcher thread.
      Result<Tensor> forward = [&]() -> Result<Tensor> {
        try {
          return program != nullptr
                     ? group.handle.model->PredictPruned(group.graph->features,
                                                         *program, &scratch_)
                     : ForwardFullGraph(*group.handle.model, *group.graph,
                                        group.resolved, &scratch_);
        } catch (const std::exception& e) {
          return Status::Internal(std::string("group forward threw: ") +
                                  e.what());
        } catch (...) {
          return Status::Internal(
              "group forward threw a non-standard exception");
        }
      }();
      forward_start_ticks_.store(0, std::memory_order_release);
      if (backend_.breaker_report != nullptr) {
        backend_.breaker_report(live.front().request.model,
                                live.front().request.graph, forward.ok());
      }
      if (!forward.ok() && forward.status().code() == StatusCode::kInternal) {
        contained_faults_.fetch_add(1, std::memory_order_relaxed);
      }
      forward_us = MicrosBetween(group_start, ServingClock::now());
      forwards_.fetch_add(1, std::memory_order_relaxed);
      (program != nullptr ? pruned_forwards_ : full_forwards_)
          .fetch_add(1, std::memory_order_relaxed);
      (group.resolved == Precision::kInt8
           ? group.handle.counters->forward_int8
           : group.handle.counters->forward_fp32)
          .Record(forward_us);
      if (!forward.ok()) {
        for (Pending& pending : live) {
          Fail(&pending, forward.status(), group.handle.counters);
        }
        continue;
      }
      logits = forward.MoveValueOrDie();
      if (options_.enable_cache && program == nullptr) {
        cache_[key] = CacheEntry{live.front().request.model,
                                 live.front().request.graph,
                                 group.handle.version, group.graph->version,
                                 logits};
      }
    }

    for (Pending& pending : live) {
      Result<Tensor> rows =
          program != nullptr
              ? Result<Tensor>(GatherPrunedRows(logits, program->targets(),
                                                pending.request.node_ids,
                                                *group.graph))
              : GatherLogitRows(logits, pending.request.node_ids, *group.graph);
      if (!rows.ok()) {
        Fail(&pending, rows.status(), group.handle.counters);
        continue;
      }
      PredictResponse response;
      response.rows = rows.MoveValueOrDie();
      response.node_ids = pending.request.node_ids;
      response.precision = group.resolved;
      response.batch_size = static_cast<int64_t>(live.size());
      response.cache_hit = cache_hit;
      response.pruned = program != nullptr;
      response.frontier_rows = program != nullptr ? program->frontier_rows() : 0;
      response.forward_us = forward_us;
      response.queue_us = MicrosBetween(pending.admitted, dispatch_start);
      response.total_us = MicrosBetween(pending.admitted, ServingClock::now());
      group.handle.counters->successes.fetch_add(1, std::memory_order_relaxed);
      group.handle.counters->latency.Record(response.total_us);
      pending.promise.set_value(std::move(response));
    }
  }
  in_dispatch_.fetch_sub(static_cast<int64_t>(batch.size()),
                         std::memory_order_relaxed);
  if (++cycles_since_sweep_ >= 64) {
    cycles_since_sweep_ = 0;
    SweepCache();
  }
}

void Batcher::SweepCache() {
  for (auto it = cache_.begin(); it != cache_.end();) {
    const CacheEntry& entry = it->second;
    Result<ModelHandle> model = backend_.lookup_model(entry.model_name);
    Result<GraphContextPtr> graph = backend_.lookup_graph(entry.graph_name);
    const bool valid = model.ok() && graph.ok() &&
                       model.ValueOrDie().version == entry.model_version &&
                       graph.ValueOrDie()->version == entry.graph_version;
    it = valid ? std::next(it) : cache_.erase(it);
  }
}

Batcher::Stats Batcher::GetStats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.forwards = forwards_.load(std::memory_order_relaxed);
  stats.pruned_forwards = pruned_forwards_.load(std::memory_order_relaxed);
  stats.full_forwards = full_forwards_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.contained_faults = contained_faults_.load(std::memory_order_relaxed);
  stats.watchdog_expired = watchdog_expired_.load(std::memory_order_relaxed);
  stats.queue_depth = static_cast<int64_t>(queue_.size());
  stats.in_dispatch = in_dispatch_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace engine
}  // namespace mixq
