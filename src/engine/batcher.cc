// Copyright 2026 MixQ-GNN Authors
#include "engine/batcher.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace mixq {
namespace engine {

namespace {

double MicrosBetween(ServingClock::time_point from, ServingClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Copies the requested logit rows into a fresh tensor (cached logits must
/// never share storage with a caller-visible tensor). Empty ids = all rows.
Result<Tensor> GatherLogitRows(const Tensor& logits, const std::vector<int64_t>& ids) {
  const int64_t n = logits.rows();
  const int64_t d = logits.cols();
  if (ids.empty()) {
    return Tensor::FromVector(logits.shape(), logits.data());
  }
  Tensor rows = Tensor::Zeros(Shape(static_cast<int64_t>(ids.size()), d));
  float* dst = rows.data().data();
  const float* src = logits.data().data();
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t id = ids[i];
    if (id < 0 || id >= n) {
      return Status::InvalidArgument("node id " + std::to_string(id) +
                                     " out of range for graph with " +
                                     std::to_string(n) + " nodes");
    }
    std::memcpy(dst + static_cast<size_t>(i) * static_cast<size_t>(d),
                src + static_cast<size_t>(id) * static_cast<size_t>(d),
                static_cast<size_t>(d) * sizeof(float));
  }
  return rows;
}

}  // namespace

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kAuto: return "auto";
    case Precision::kFp32: return "fp32";
    case Precision::kInt8: return "int8";
  }
  return "unknown";
}

Result<Precision> ResolvePrecision(const CompiledModel& model,
                                   const GraphContext& graph,
                                   Precision requested) {
  switch (requested) {
    case Precision::kFp32:
      return Precision::kFp32;
    case Precision::kInt8:
      if (!model.info().lowered_int8) {
        return Status::NotImplemented("model '" + model.info().scheme_label +
                                      "' has no all-integer lowering");
      }
      if (!graph.int8_depth_safe) {
        return Status::InvalidArgument(
            "graph '" + graph.name +
            "' has a row too deep for the int8 executor; request fp32");
      }
      return Precision::kInt8;
    case Precision::kAuto:
      return model.info().lowered_int8 && graph.int8_depth_safe
                 ? Precision::kInt8
                 : Precision::kFp32;
  }
  return Status::InvalidArgument("unknown precision");
}

Result<Tensor> ForwardFullGraph(const CompiledModel& model,
                                const GraphContext& graph, Precision resolved,
                                PredictScratch* scratch) {
  if (resolved == Precision::kInt8) {
    return model.PredictQuantized(graph.features, graph.op, scratch);
  }
  return model.Predict(graph.features, graph.op, scratch);
}

Batcher::Batcher(Backend backend, BatcherOptions options)
    : backend_(std::move(backend)),
      options_(options),
      queue_(options.queue_capacity),
      dispatcher_([this] { DispatcherLoop(); }) {}

Batcher::~Batcher() {
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<Result<PredictResponse>> Batcher::Submit(PredictRequest request) {
  Pending pending;
  pending.admitted = ServingClock::now();
  std::future<Result<PredictResponse>> future = pending.promise.get_future();
  if (pending.admitted > request.deadline) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    backend_.count_failure();
    pending.promise.set_value(
        Status::DeadlineExceeded("request deadline passed before admission"));
    return future;
  }
  pending.request = std::move(request);
  if (!queue_.TryPush(std::move(pending))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    backend_.count_failure();
    pending.promise.set_value(Status::ResourceExhausted(
        "serving queue full (capacity " +
        std::to_string(queue_.capacity()) + ") or shut down"));
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

void Batcher::DispatcherLoop() {
  for (;;) {
    std::vector<Pending> batch = queue_.WaitDrain();
    if (batch.empty()) return;  // closed and fully drained
    Dispatch(std::move(batch));
  }
}

void Batcher::Fail(Pending* pending, Status status,
                   const ModelCountersPtr& counters) {
  backend_.count_failure();
  if (counters != nullptr) {
    counters->failures.fetch_add(1, std::memory_order_relaxed);
  }
  pending->promise.set_value(std::move(status));
}

void Batcher::Dispatch(std::vector<Pending> batch) {
  in_dispatch_.fetch_add(static_cast<int64_t>(batch.size()),
                         std::memory_order_relaxed);
  const ServingClock::time_point dispatch_start = ServingClock::now();

  // Coalesce: group the drained requests by (model, graph, resolved
  // precision). Registry lookups happen here — once per distinct name, not
  // per request — so hot swaps between admission and dispatch are honoured.
  struct Group {
    ModelHandle handle;
    GraphContextPtr graph;
    Precision resolved = Precision::kFp32;
    std::vector<Pending> members;
  };
  std::map<std::string, Group> groups;
  std::map<std::string, Result<ModelHandle>> model_lookups;
  std::map<std::string, Result<GraphContextPtr>> graph_lookups;

  for (Pending& pending : batch) {
    auto model_it = model_lookups.find(pending.request.model);
    if (model_it == model_lookups.end()) {
      model_it = model_lookups
                     .emplace(pending.request.model,
                              backend_.lookup_model(pending.request.model))
                     .first;
    }
    ModelCountersPtr counters = model_it->second.ok()
                                    ? model_it->second.ValueOrDie().counters
                                    : nullptr;
    if (dispatch_start > pending.request.deadline) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      Fail(&pending, Status::DeadlineExceeded("request expired in queue"), counters);
      continue;
    }
    if (!model_it->second.ok()) {
      Fail(&pending, model_it->second.status(), nullptr);
      continue;
    }
    auto graph_it = graph_lookups.find(pending.request.graph);
    if (graph_it == graph_lookups.end()) {
      graph_it = graph_lookups
                     .emplace(pending.request.graph,
                              backend_.lookup_graph(pending.request.graph))
                     .first;
    }
    if (!graph_it->second.ok()) {
      Fail(&pending, graph_it->second.status(), counters);
      continue;
    }
    const ModelHandle& handle = model_it->second.ValueOrDie();
    const GraphContextPtr& graph = graph_it->second.ValueOrDie();
    Result<Precision> resolved =
        ResolvePrecision(*handle.model, *graph, pending.request.precision);
    if (!resolved.ok()) {
      Fail(&pending, resolved.status(), counters);
      continue;
    }
    // Range-check node ids now, while the graph is resolved: a bad request
    // must not cost (or trigger) the group's shared forward.
    const int64_t num_nodes = graph->features.rows();
    bool ids_ok = true;
    for (int64_t id : pending.request.node_ids) {
      if (id < 0 || id >= num_nodes) {
        Fail(&pending,
             Status::InvalidArgument("node id " + std::to_string(id) +
                                     " out of range for graph '" +
                                     pending.request.graph + "' with " +
                                     std::to_string(num_nodes) + " nodes"),
             counters);
        ids_ok = false;
        break;
      }
    }
    if (!ids_ok) continue;
    std::string key = pending.request.model + '\x1f' + pending.request.graph +
                      '\x1f' + PrecisionName(resolved.ValueOrDie());
    Group& group = groups[key];
    if (group.members.empty()) {
      group.handle = handle;
      group.graph = graph;
      group.resolved = resolved.ValueOrDie();
    }
    group.members.push_back(std::move(pending));
  }

  // One forward (or cache gather) per group.
  for (auto& [key, group] : groups) {
    // Deadlines are re-checked per group: an earlier group's forward may
    // have consumed another group's remaining budget.
    const ServingClock::time_point group_start = ServingClock::now();
    std::vector<Pending> live;
    live.reserve(group.members.size());
    for (Pending& pending : group.members) {
      if (group_start > pending.request.deadline) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        Fail(&pending, Status::DeadlineExceeded("request expired in queue"),
             group.handle.counters);
      } else {
        live.push_back(std::move(pending));
      }
    }
    if (live.empty()) continue;

    Tensor logits;
    bool cache_hit = false;
    double forward_us = 0.0;
    auto cached = cache_.find(key);
    if (options_.enable_cache && cached != cache_.end() &&
        cached->second.model_version == group.handle.version &&
        cached->second.graph_version == group.graph->version) {
      logits = cached->second.logits;
      cache_hit = true;
      cache_hits_.fetch_add(static_cast<int64_t>(live.size()),
                            std::memory_order_relaxed);
    } else {
      Result<Tensor> forward = ForwardFullGraph(*group.handle.model,
                                                *group.graph, group.resolved,
                                                &scratch_);
      forward_us = MicrosBetween(group_start, ServingClock::now());
      forwards_.fetch_add(1, std::memory_order_relaxed);
      if (!forward.ok()) {
        for (Pending& pending : live) {
          Fail(&pending, forward.status(), group.handle.counters);
        }
        continue;
      }
      logits = forward.MoveValueOrDie();
      if (options_.enable_cache) {
        cache_[key] = CacheEntry{live.front().request.model,
                                 live.front().request.graph,
                                 group.handle.version, group.graph->version,
                                 logits};
      }
    }

    for (Pending& pending : live) {
      Result<Tensor> rows = GatherLogitRows(logits, pending.request.node_ids);
      if (!rows.ok()) {
        Fail(&pending, rows.status(), group.handle.counters);
        continue;
      }
      PredictResponse response;
      response.rows = rows.MoveValueOrDie();
      response.node_ids = pending.request.node_ids;
      response.precision = group.resolved;
      response.batch_size = static_cast<int64_t>(live.size());
      response.cache_hit = cache_hit;
      response.forward_us = forward_us;
      response.queue_us = MicrosBetween(pending.admitted, dispatch_start);
      response.total_us = MicrosBetween(pending.admitted, ServingClock::now());
      group.handle.counters->successes.fetch_add(1, std::memory_order_relaxed);
      group.handle.counters->latency.Record(response.total_us);
      pending.promise.set_value(std::move(response));
    }
  }
  in_dispatch_.fetch_sub(static_cast<int64_t>(batch.size()),
                         std::memory_order_relaxed);
  if (++cycles_since_sweep_ >= 64) {
    cycles_since_sweep_ = 0;
    SweepCache();
  }
}

void Batcher::SweepCache() {
  for (auto it = cache_.begin(); it != cache_.end();) {
    const CacheEntry& entry = it->second;
    Result<ModelHandle> model = backend_.lookup_model(entry.model_name);
    Result<GraphContextPtr> graph = backend_.lookup_graph(entry.graph_name);
    const bool valid = model.ok() && graph.ok() &&
                       model.ValueOrDie().version == entry.model_version &&
                       graph.ValueOrDie()->version == entry.graph_version;
    it = valid ? std::next(it) : cache_.erase(it);
  }
}

Batcher::Stats Batcher::GetStats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.forwards = forwards_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.queue_depth = static_cast<int64_t>(queue_.size());
  stats.in_dispatch = in_dispatch_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace engine
}  // namespace mixq
