// Copyright 2026 MixQ-GNN Authors
// Tests for the serving layer: CompileModel freezing, compile→Predict parity
// with the training pipeline's eval-mode forward, and the thread-safe
// InferenceEngine model registry.
#include <gtest/gtest.h>

#include <thread>

#include "core/experiment.h"
#include "engine/inference_engine.h"

namespace mixq {
namespace {

using engine::CompiledModelPtr;
using engine::CompileModel;
using engine::InferenceEngine;

NodeDataset TinyCitation(uint64_t seed = 1) {
  CitationConfig c;
  c.name = "tiny-citation";
  c.num_nodes = 160;
  c.num_classes = 3;
  c.feature_dim = 20;
  c.avg_degree = 3.0;
  c.homophily = 0.85;
  c.train_per_class = 8;
  c.val_count = 30;
  c.test_count = 60;
  c.seed = seed;
  return GenerateCitation(c);
}

// Trains a small experiment and returns its artifact.
std::shared_ptr<ModelArtifact> TrainArtifact(const SchemeRef& scheme,
                                             uint64_t seed = 1) {
  NodeExperimentConfig cfg;
  cfg.hidden = 12;
  cfg.num_layers = 2;
  cfg.dropout = 0.2f;
  cfg.train.epochs = 15;
  cfg.train.lr = 0.05f;
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(TinyCitation(seed), cfg, scheme);
  spec.keep_artifact = true;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  EXPECT_TRUE(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ValueOrDie().artifact;
}

TEST(CompileModelTest, RejectsIncompleteArtifacts) {
  ModelArtifact empty;
  EXPECT_EQ(CompileModel(empty).status().code(), StatusCode::kInvalidArgument);

  ModelArtifact no_net;
  no_net.scheme = std::make_shared<NoQuantScheme>();
  EXPECT_EQ(CompileModel(no_net).status().code(), StatusCode::kInvalidArgument);
}

TEST(CompileModelTest, FreezesMetadataFromScheme) {
  auto artifact = TrainArtifact(SchemeRef::MixQ(0.05, {2, 4, 8}));
  ASSERT_NE(artifact, nullptr);
  Result<CompiledModelPtr> compiled = CompileModel(*artifact);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  const auto& info = compiled.ValueOrDie()->info();
  EXPECT_EQ(info.in_features, 20);
  EXPECT_EQ(info.out_dim, 3);
  EXPECT_GT(info.param_count, 0);
  EXPECT_FALSE(info.bit_assignment.empty());
  EXPECT_LT(info.avg_bits, 32.0);  // a quantized model, not FP32
  // The frozen assignment matches what the search selected.
  for (const auto& [id, bits] : artifact->selected_bits) {
    EXPECT_EQ(info.bit_assignment.at(id), bits) << id;
  }
}

TEST(CompileModelTest, PredictMatchesEvalForwardBitwise) {
  // The acceptance contract: Predict on a compiled MixQ model returns
  // logits bitwise-identical to the training pipeline's eval-mode forward.
  auto artifact = TrainArtifact(SchemeRef::MixQ(0.05, {2, 4, 8}));
  ASSERT_NE(artifact, nullptr);
  Result<CompiledModelPtr> compiled = CompileModel(*artifact);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  // Reference: the eval path exactly as the training loop runs it.
  artifact->gcn->SetTraining(false);
  artifact->scheme->BeginStep(false);
  Tensor reference =
      artifact->gcn->Forward(artifact->features, artifact->op,
                             artifact->scheme.get(), nullptr);

  Result<Tensor> served =
      compiled.ValueOrDie()->Predict(artifact->features, artifact->op);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  ASSERT_EQ(served.ValueOrDie().rows(), reference.rows());
  ASSERT_EQ(served.ValueOrDie().cols(), reference.cols());
  const auto& a = served.ValueOrDie().data();
  const auto& b = reference.data();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "logit " << i << " diverged";  // bitwise
  }
}

TEST(CompileModelTest, PredictValidatesShapes) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  Result<CompiledModelPtr> compiled = CompileModel(*artifact);
  ASSERT_TRUE(compiled.ok());

  Rng rng(1);
  Tensor bad = Tensor::RandomUniform(Shape(4, 7), &rng, -1.0f, 1.0f);
  EXPECT_EQ(compiled.ValueOrDie()->Predict(bad, artifact->op).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      compiled.ValueOrDie()->Predict(artifact->features, nullptr).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(InferenceEngineTest, ModelRegistryLifecycle) {
  auto artifact = TrainArtifact(SchemeRef::Qat(4));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();

  InferenceEngine engine;
  EXPECT_TRUE(engine.RegisterModel("citation-int4", model).ok());
  EXPECT_EQ(engine.RegisterModel("citation-int4", model).code(),
            StatusCode::kInvalidArgument);  // duplicate
  EXPECT_EQ(engine.RegisterModel("", model).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.RegisterModel("null", nullptr).code(),
            StatusCode::kInvalidArgument);

  EXPECT_TRUE(engine.ReplaceModel("citation-int4", model).ok());  // hot swap
  EXPECT_EQ(engine.ModelNames(), std::vector<std::string>{"citation-int4"});
  EXPECT_TRUE(engine.GetModel("citation-int4").ok());
  EXPECT_EQ(engine.GetModel("absent").status().code(), StatusCode::kNotFound);

  EXPECT_TRUE(engine.UnregisterModel("citation-int4").ok());
  EXPECT_EQ(engine.UnregisterModel("citation-int4").code(), StatusCode::kNotFound);
}

TEST(InferenceEngineTest, ListModelsAndGraphsIntrospection) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();

  InferenceEngine engine;
  EXPECT_TRUE(engine.ListModels().empty());
  EXPECT_TRUE(engine.ListGraphs().empty());
  ASSERT_TRUE(engine.RegisterModel("qat8", model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

  auto models = engine.ListModels();
  ASSERT_EQ(models.size(), 1u);
  const InferenceEngine::ModelIntrospection& m = models.at("qat8");
  EXPECT_EQ(m.info.scheme_label, model->info().scheme_label);
  EXPECT_EQ(m.info.in_features, model->info().in_features);
  EXPECT_EQ(m.info.out_dim, model->info().out_dim);
  EXPECT_EQ(m.info.bit_assignment, model->info().bit_assignment);
  EXPECT_GT(m.version, 0u);

  auto graphs = engine.ListGraphs();
  ASSERT_EQ(graphs.size(), 1u);
  const InferenceEngine::GraphIntrospection& g = graphs.at("g");
  EXPECT_EQ(g.nodes, artifact->features.rows());
  EXPECT_EQ(g.feature_dim, artifact->features.cols());
  EXPECT_EQ(g.nnz, artifact->op->nnz());
  EXPECT_GT(g.version, 0u);

  // Replace bumps the registry version — the handle the result cache keys
  // on, so a bump is what makes PredictResponse.cache_hit turn false.
  ASSERT_TRUE(engine.ReplaceModel("qat8", model).ok());
  ASSERT_TRUE(engine.ReplaceGraph("g", artifact->features, artifact->op).ok());
  EXPECT_GT(engine.ListModels().at("qat8").version, m.version);
  EXPECT_GT(engine.ListGraphs().at("g").version, g.version);

  ASSERT_TRUE(engine.UnregisterModel("qat8").ok());
  ASSERT_TRUE(engine.UnregisterGraph("g").ok());
  EXPECT_TRUE(engine.ListModels().empty());
  EXPECT_TRUE(engine.ListGraphs().empty());
}

TEST(InferenceEngineTest, GraphRegistryErrorPaths) {
  auto artifact = TrainArtifact(SchemeRef::Fp32());
  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());
  EXPECT_EQ(engine.RegisterGraph("g", artifact->features, artifact->op).code(),
            StatusCode::kInvalidArgument);  // duplicate
  EXPECT_EQ(engine.UnregisterGraph("absent").code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.LoadGraphFromFile("g2", "/nonexistent/graph.mqb").code(),
            StatusCode::kNotFound);
}

TEST(InferenceEngineTest, PredictRoutesAndCounts) {
  auto artifact = TrainArtifact(SchemeRef::MixQ(0.05, {2, 4, 8}), 3);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();

  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterModel("mixq", model).ok());

  Result<Tensor> via_engine =
      engine.Predict("mixq", artifact->features, artifact->op);
  ASSERT_TRUE(via_engine.ok()) << via_engine.status().ToString();
  Result<Tensor> direct = model->Predict(artifact->features, artifact->op);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_engine.ValueOrDie().data(), direct.ValueOrDie().data());

  EXPECT_EQ(engine.Predict("absent", artifact->features, artifact->op)
                .status()
                .code(),
            StatusCode::kNotFound);

  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(stats.per_model.at("mixq").successes, 1);
  EXPECT_EQ(stats.per_model.at("mixq").failures, 0);
  // The served request recorded a latency sample.
  EXPECT_GT(stats.per_model.at("mixq").p50_us, 0.0);
  EXPECT_GE(stats.per_model.at("mixq").p99_us, stats.per_model.at("mixq").p50_us);
}

TEST(InferenceEngineTest, ConcurrentPredictsAreConsistent) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8), 5);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();

  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  Tensor reference = model->Predict(artifact->features, artifact->op).ValueOrDie();

  constexpr int kThreads = 4;
  constexpr int kRequests = 3;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kRequests; ++i) {
        Result<Tensor> out = engine.Predict("m", artifact->features, artifact->op);
        if (!out.ok() || out.ValueOrDie().data() != reference.data()) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);

  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.requests, kThreads * kRequests);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.per_model.at("m").successes, kThreads * kRequests);
}

}  // namespace
}  // namespace mixq
