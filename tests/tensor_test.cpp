// Copyright 2026 MixQ-GNN Authors
// Tests for the Tensor container and autograd machinery.
#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace mixq {
namespace {

TEST(ShapeTest, RankAndNumel) {
  Shape s1(5);
  EXPECT_EQ(s1.rank(), 1);
  EXPECT_EQ(s1.numel(), 5);
  EXPECT_EQ(s1.rows(), 5);
  EXPECT_EQ(s1.cols(), 1);
  Shape s2(3, 4);
  EXPECT_EQ(s2.rank(), 2);
  EXPECT_EQ(s2.numel(), 12);
  EXPECT_EQ(s2.rows(), 3);
  EXPECT_EQ(s2.cols(), 4);
  EXPECT_EQ(s2.ToString(), "(3, 4)");
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape(3, 4), Shape(3, 4));
  EXPECT_NE(Shape(3, 4), Shape(4, 3));
  EXPECT_NE(Shape(12), Shape(3, 4));
}

TEST(TensorTest, Factories) {
  Tensor z = Tensor::Zeros(Shape(2, 3));
  EXPECT_EQ(z.numel(), 6);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);
  Tensor o = Tensor::Ones(Shape(4));
  for (float v : o.data()) EXPECT_EQ(v, 1.0f);
  Tensor f = Tensor::Full(Shape(2, 2), 2.5f);
  for (float v : f.data()) EXPECT_EQ(v, 2.5f);
  Tensor s = Tensor::Scalar(-1.0f);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.item(), -1.0f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector(Shape(2, 2), {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, RandomInitBounds) {
  Rng rng(1);
  Tensor u = Tensor::RandomUniform(Shape(100), &rng, -0.5f, 0.5f);
  for (float v : u.data()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
  Tensor g = Tensor::GlorotUniform(64, 64, &rng);
  const float limit = std::sqrt(6.0f / 128.0f);
  for (float v : g.data()) EXPECT_LE(std::fabs(v), limit);
  EXPECT_TRUE(g.requires_grad());
}

TEST(TensorTest, DetachDropsHistory) {
  Tensor a = Tensor::Ones(Shape(2), /*requires_grad=*/true);
  Tensor b = Scale(a, 2.0f);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.data()[0], 2.0f);
  EXPECT_TRUE(d.impl()->parents.empty());
}

TEST(AutogradTest, SimpleChain) {
  // loss = sum(2 * x), dloss/dx = 2.
  Tensor x = Tensor::FromVector(Shape(3), {1, 2, 3}, /*requires_grad=*/true);
  Tensor loss = Sum(Scale(x, 2.0f));
  EXPECT_FLOAT_EQ(loss.item(), 12.0f);
  loss.Backward();
  ASSERT_EQ(x.grad().size(), 3u);
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 2.0f);
}

TEST(AutogradTest, GradientAccumulatesAcrossBackwards) {
  Tensor x = Tensor::Ones(Shape(2), /*requires_grad=*/true);
  Sum(x).Backward();
  Sum(x).Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 2.0f);
  x.ZeroGrad();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(AutogradTest, DiamondDependency) {
  // y = x*x (via Mul sharing the same node twice); dy/dx = 2x.
  Tensor x = Tensor::FromVector(Shape(2), {3, -4}, /*requires_grad=*/true);
  Tensor loss = Sum(Mul(x, x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], -8.0f);
}

TEST(AutogradTest, NoGradWhenNotRequired) {
  Tensor x = Tensor::Ones(Shape(2), /*requires_grad=*/false);
  Tensor loss = Sum(Scale(x, 3.0f));
  loss.Backward();
  EXPECT_TRUE(x.grad().empty());
}

TEST(AutogradTest, DeepChainNoStackOverflow) {
  // Iterative topo-sort must handle long chains.
  Tensor x = Tensor::Ones(Shape(1), /*requires_grad=*/true);
  Tensor h = x;
  for (int i = 0; i < 5000; ++i) h = Scale(h, 1.0f);
  Sum(h).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

TEST(AutogradTest, MatMulGradientValues) {
  // loss = sum(A·B): dA = 1·B^T, dB = A^T·1.
  Tensor a = Tensor::FromVector(Shape(2, 2), {1, 2, 3, 4}, true);
  Tensor b = Tensor::FromVector(Shape(2, 2), {5, 6, 7, 8}, true);
  Sum(MatMul(a, b)).Backward();
  // dA[i][k] = sum_j B[k][j]
  EXPECT_FLOAT_EQ(a.grad()[0], 11.0f);  // 5+6
  EXPECT_FLOAT_EQ(a.grad()[1], 15.0f);  // 7+8
  EXPECT_FLOAT_EQ(a.grad()[2], 11.0f);
  EXPECT_FLOAT_EQ(a.grad()[3], 15.0f);
  // dB[k][j] = sum_i A[i][k]
  EXPECT_FLOAT_EQ(b.grad()[0], 4.0f);  // 1+3
  EXPECT_FLOAT_EQ(b.grad()[1], 4.0f);
  EXPECT_FLOAT_EQ(b.grad()[2], 6.0f);  // 2+4
  EXPECT_FLOAT_EQ(b.grad()[3], 6.0f);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::Zeros(Shape(100));
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace mixq
