// Copyright 2026 MixQ-GNN Authors
// Tests for optimizers, metrics, k-fold splits, and the training loop.
#include <gtest/gtest.h>

#include <set>

#include "nn/linear.h"
#include "quant/scheme.h"
#include "tensor/ops.h"
#include "train/metrics.h"
#include "train/optimizer.h"
#include "train/trainer.h"

namespace mixq {
namespace {

TEST(SgdTest, MinimizesQuadratic) {
  Tensor x = Tensor::FromVector(Shape(2), {5.0f, -3.0f}, true);
  Sgd sgd({x}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    sgd.ZeroGrad();
    Sum(Mul(x, x)).Backward();
    sgd.Step();
  }
  EXPECT_NEAR(x.data()[0], 0.0f, 1e-3);
  EXPECT_NEAR(x.data()[1], 0.0f, 1e-3);
}

TEST(SgdTest, MomentumAccelerates) {
  Tensor a = Tensor::Scalar(10.0f, true);
  Tensor b = Tensor::Scalar(10.0f, true);
  Sgd plain({a}, 0.01f, 0.0f);
  Sgd heavy({b}, 0.01f, 0.9f);
  for (int i = 0; i < 50; ++i) {
    plain.ZeroGrad();
    Sum(Mul(a, a)).Backward();
    plain.Step();
    heavy.ZeroGrad();
    Sum(Mul(b, b)).Backward();
    heavy.Step();
  }
  EXPECT_LT(std::fabs(b.item()), std::fabs(a.item()));
}

TEST(SgdTest, WeightDecayShrinksParams) {
  Tensor x = Tensor::Scalar(1.0f, true);
  Sgd sgd({x}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  // No loss gradient at all: decay alone must shrink.
  x.impl()->EnsureGrad();
  for (int i = 0; i < 10; ++i) sgd.Step();
  EXPECT_LT(x.item(), 1.0f);
  EXPECT_GT(x.item(), 0.0f);
}

TEST(AdamTest, MinimizesRosenbrockish) {
  // f(x, y) = (1-x)^2 + 10 (y - x^2)^2, minimum at (1, 1).
  Tensor x = Tensor::Scalar(-0.5f, true);
  Tensor y = Tensor::Scalar(2.0f, true);
  Adam adam({x, y}, 0.02f);
  for (int i = 0; i < 3000; ++i) {
    adam.ZeroGrad();
    Tensor one_minus_x = AddScalar(Scale(x, -1.0f), 1.0f);
    Tensor x2 = Mul(x, x);
    Tensor resid = Sub(y, x2);
    Tensor loss = Add(Mul(one_minus_x, one_minus_x), Scale(Mul(resid, resid), 10.0f));
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(x.item(), 1.0f, 0.05f);
  EXPECT_NEAR(y.item(), 1.0f, 0.1f);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  Tensor used = Tensor::Scalar(1.0f, true);
  Tensor unused = Tensor::Scalar(7.0f, true);
  Adam adam({used, unused}, 0.1f);
  adam.ZeroGrad();
  Sum(Mul(used, used)).Backward();
  adam.Step();
  EXPECT_FLOAT_EQ(unused.item(), 7.0f);
  EXPECT_NE(used.item(), 1.0f);
}

TEST(AccuracyTest, MaskedComputation) {
  Tensor logits = Tensor::FromVector(Shape(3, 2), {2, 1, 0, 3, 5, 4});
  std::vector<int64_t> labels = {0, 1, 1};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {1, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 0, 1}), 0.0);
}

TEST(AccuracyTest, IgnoresNegativeLabels) {
  Tensor logits = Tensor::FromVector(Shape(2, 2), {1, 0, 0, 1});
  EXPECT_DOUBLE_EQ(Accuracy(logits, {-1, 1}, {1, 1}), 1.0);
}

TEST(RocAucTest, PerfectSeparationIsOne) {
  Tensor logits = Tensor::FromVector(Shape(4, 1), {-2, -1, 1, 2});
  Tensor targets = Tensor::FromVector(Shape(4, 1), {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(RocAucMultiLabel(logits, targets, {1, 1, 1, 1}), 1.0);
}

TEST(RocAucTest, ReversedSeparationIsZero) {
  Tensor logits = Tensor::FromVector(Shape(4, 1), {2, 1, -1, -2});
  Tensor targets = Tensor::FromVector(Shape(4, 1), {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(RocAucMultiLabel(logits, targets, {1, 1, 1, 1}), 0.0);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  Rng rng(1);
  const int64_t n = 2000;
  Tensor logits = Tensor::RandomUniform(Shape(n, 1), &rng, -1.0f, 1.0f);
  Tensor targets = Tensor::Zeros(Shape(n, 1));
  for (int64_t i = 0; i < n; ++i) targets.at(i, 0) = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  std::vector<uint8_t> mask(static_cast<size_t>(n), 1);
  EXPECT_NEAR(RocAucMultiLabel(logits, targets, mask), 0.5, 0.05);
}

TEST(RocAucTest, DegenerateTaskSkipped) {
  // Column 1 is all-positive: must not poison the average.
  Tensor logits = Tensor::FromVector(Shape(4, 2), {-2, 0, -1, 0, 1, 0, 2, 0});
  Tensor targets = Tensor::FromVector(Shape(4, 2), {0, 1, 0, 1, 1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(RocAucMultiLabel(logits, targets, {1, 1, 1, 1}), 1.0);
}

TEST(KFoldTest, PartitionProperties) {
  auto folds = KFoldSplits(103, 10, 7);
  ASSERT_EQ(folds.size(), 10u);
  std::set<int64_t> all_test;
  for (const auto& f : folds) {
    for (int64_t i : f.test) {
      EXPECT_TRUE(all_test.insert(i).second) << "index in two test folds";
    }
    // train ∪ test covers everything, disjointly.
    std::set<int64_t> train(f.train.begin(), f.train.end());
    EXPECT_EQ(train.size() + f.test.size(), 103u);
    for (int64_t i : f.test) EXPECT_FALSE(train.count(i));
  }
  EXPECT_EQ(all_test.size(), 103u);
}

TEST(KFoldTest, DeterministicPerSeed) {
  auto a = KFoldSplits(50, 5, 3);
  auto b = KFoldSplits(50, 5, 3);
  auto c = KFoldSplits(50, 5, 4);
  EXPECT_EQ(a[0].test, b[0].test);
  EXPECT_NE(a[0].test, c[0].test);
}

TEST(TrainingLoopTest, LearnsLinearlySeparableTask) {
  // 2-class toy: y = 1 iff x0 > x1; a Linear must reach ~100% train acc.
  Rng rng(5);
  const int64_t n = 200;
  Tensor x = Tensor::RandomUniform(Shape(n, 2), &rng, -1.0f, 1.0f);
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) labels[static_cast<size_t>(i)] = x.at(i, 0) > x.at(i, 1);
  std::vector<uint8_t> train_mask(static_cast<size_t>(n), 0),
      val_mask(static_cast<size_t>(n), 0);
  for (int64_t i = 0; i < n; ++i) {
    (i % 2 == 0 ? train_mask : val_mask)[static_cast<size_t>(i)] = 1;
  }

  struct Wrapper : Module {
    explicit Wrapper(Rng* rng) : lin(2, 2, "toy", rng) {}
    std::vector<Tensor> Parameters() override { return lin.Parameters(); }
    Linear lin;
  } model(&rng);
  NoQuantScheme scheme;

  TrainLoopConfig cfg;
  cfg.epochs = 200;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.0f;
  TrainResult result = RunTrainingLoop(
      cfg, &model, &scheme, [&](Rng*) { return model.lin.Forward(x, &scheme); },
      [&](const Tensor& logits) { return CrossEntropyMasked(logits, labels, train_mask); },
      [&](const Tensor& logits, bool is_test) {
        return Accuracy(logits, labels, is_test ? val_mask : val_mask);
      });
  EXPECT_GT(result.best_val_metric, 0.95);
  EXPECT_EQ(result.epochs_run, 200);
}

TEST(TrainingLoopTest, EarlyStoppingHalts) {
  Rng rng(6);
  struct Wrapper : Module {
    explicit Wrapper(Rng* rng) : lin(2, 2, "toy", rng) {}
    std::vector<Tensor> Parameters() override { return lin.Parameters(); }
    Linear lin;
  } model(&rng);
  NoQuantScheme scheme;
  Tensor x = Tensor::RandomUniform(Shape(10, 2), &rng, -1.0f, 1.0f);
  std::vector<int64_t> labels(10, 0);
  std::vector<uint8_t> mask(10, 1);
  TrainLoopConfig cfg;
  cfg.epochs = 500;
  cfg.early_stop_patience = 5;
  TrainResult result = RunTrainingLoop(
      cfg, &model, &scheme, [&](Rng*) { return model.lin.Forward(x, &scheme); },
      [&](const Tensor& logits) { return CrossEntropyMasked(logits, labels, mask); },
      [&](const Tensor&, bool) { return 0.5; });  // constant val metric
  EXPECT_LT(result.epochs_run, 20);
}

}  // namespace
}  // namespace mixq
