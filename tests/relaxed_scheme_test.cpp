// Copyright 2026 MixQ-GNN Authors
// Tests for the relaxed MixQ scheme: Eq. (6) mixtures, Eq. (8) penalties,
// α gradients, and bit-width selection (Algorithm 1).
#include <gtest/gtest.h>

#include <cmath>

#include "core/relaxed_scheme.h"
#include "tensor/ops.h"
#include "train/optimizer.h"

namespace mixq {
namespace {

TEST(RelaxedSchemeTest, UniformAlphaMixesCandidatesEqually) {
  RelaxedOptions opts;
  opts.bit_options = {2, 8};
  RelaxedMixQScheme scheme(opts);
  Rng rng(1);
  Tensor x = Tensor::RandomUniform(Shape(8, 4), &rng, -1.0f, 1.0f);
  scheme.BeginStep(true);
  Tensor y = scheme.Quantize("c", x, ComponentKind::kInput, true);
  // With α = 0, output = 0.5·Q2(x) + 0.5·Q8(x); Q8 ≈ x, Q2 is coarse, so the
  // mixture is strictly between the two.
  EXPECT_NE(y.impl_ptr(), x.impl_ptr());
  auto w = scheme.AlphaWeights("c");
  EXPECT_NEAR(w[0], 0.5, 1e-6);
  EXPECT_NEAR(w[1], 0.5, 1e-6);
}

TEST(RelaxedSchemeTest, ExpectedBitsUnderSoftmax) {
  RelaxedOptions opts;
  opts.bit_options = {2, 4, 8};
  RelaxedMixQScheme scheme(opts);
  Rng rng(2);
  Tensor x = Tensor::RandomUniform(Shape(4, 4), &rng, -1.0f, 1.0f);
  scheme.BeginStep(true);
  scheme.Quantize("c", x, ComponentKind::kInput, true);
  EXPECT_NEAR(scheme.EffectiveBits("c", 32.0), (2.0 + 4.0 + 8.0) / 3.0, 1e-5);
  EXPECT_DOUBLE_EQ(scheme.EffectiveBits("unseen", 32.0), 32.0);
}

TEST(RelaxedSchemeTest, PenaltyMatchesClosedForm) {
  RelaxedOptions opts;
  opts.bit_options = {2, 4, 8};
  opts.lambda = 2.0;
  RelaxedMixQScheme scheme(opts);
  Rng rng(3);
  Tensor x = Tensor::RandomUniform(Shape(16, 8), &rng, -1.0f, 1.0f);
  scheme.BeginStep(true);
  scheme.Quantize("c", x, ComponentKind::kInput, true);
  Tensor penalty = scheme.PenaltyLoss();
  ASSERT_TRUE(penalty.defined());
  // Normalized penalty = λ × element-weighted mean bit-width.
  const double expected = 2.0 * ((2 + 4 + 8) / 3.0);
  EXPECT_NEAR(penalty.item(), expected, 1e-4);
}

TEST(RelaxedSchemeTest, PenaltyIsElementWeightedMean) {
  // Two components with the same bit distribution: the normalized penalty is
  // the mean width, independent of how many components contributed.
  RelaxedOptions opts;
  opts.bit_options = {4};
  opts.lambda = 1.0;
  RelaxedMixQScheme scheme(opts);
  Rng rng(4);
  Tensor x = Tensor::RandomUniform(Shape(8, 8), &rng, -1.0f, 1.0f);
  scheme.BeginStep(true);
  scheme.Quantize("a", x, ComponentKind::kInput, true);
  scheme.Quantize("b", x, ComponentKind::kAggregate, true);
  EXPECT_NEAR(scheme.PenaltyLoss().item(), 4.0f, 1e-4);
  scheme.BeginStep(true);
  scheme.Quantize("a", x, ComponentKind::kInput, true);
  EXPECT_NEAR(scheme.PenaltyLoss().item(), 4.0f, 1e-4);
}

TEST(RelaxedSchemeTest, LargerTensorsDominateThePenalty) {
  // A big component at effectively-8-bits vs a tiny one at 2 bits: the
  // element-weighted mean must sit near the big component's width.
  RelaxedOptions opts;
  opts.bit_options = {2, 8};
  opts.lambda = 1.0;
  RelaxedMixQScheme scheme(opts);
  Rng rng(5);
  Tensor big = Tensor::RandomUniform(Shape(100, 100), &rng, -1.0f, 1.0f);
  Tensor tiny = Tensor::RandomUniform(Shape(2, 2), &rng, -1.0f, 1.0f);
  scheme.BeginStep(true);
  scheme.Quantize("big", big, ComponentKind::kInput, true);
  scheme.Quantize("tiny", tiny, ComponentKind::kInput, true);
  // Uniform α: both expect 5 bits; mean is 5 regardless — now bias big's α.
  scheme.SchemeParameters()[0].data() = {-10.0f, 10.0f};  // big -> 8 bits
  scheme.BeginStep(true);
  scheme.Quantize("big", big, ComponentKind::kInput, true);
  scheme.Quantize("tiny", tiny, ComponentKind::kInput, true);
  EXPECT_GT(scheme.PenaltyLoss().item(), 7.5f);
}

TEST(RelaxedSchemeTest, NoPenaltyAtEvalOrZeroLambda) {
  RelaxedOptions opts;
  opts.lambda = 0.0;
  RelaxedMixQScheme scheme(opts);
  Rng rng(5);
  Tensor x = Tensor::RandomUniform(Shape(4, 4), &rng, -1.0f, 1.0f);
  scheme.BeginStep(true);
  scheme.Quantize("c", x, ComponentKind::kInput, true);
  EXPECT_FALSE(scheme.PenaltyLoss().defined());
  RelaxedOptions opts2;
  opts2.lambda = 1.0;
  RelaxedMixQScheme scheme2(opts2);
  scheme2.BeginStep(false);
  scheme2.Quantize("c", x, ComponentKind::kInput, /*training=*/false);
  EXPECT_FALSE(scheme2.PenaltyLoss().defined());
}

TEST(RelaxedSchemeTest, AlphaReceivesTaskGradient) {
  RelaxedOptions opts;
  opts.bit_options = {2, 8};
  RelaxedMixQScheme scheme(opts);
  Rng rng(6);
  Tensor x = Tensor::RandomUniform(Shape(8, 4), &rng, -1.0f, 1.0f);
  scheme.BeginStep(true);
  Tensor y = scheme.Quantize("c", x, ComponentKind::kInput, true);
  auto params = scheme.SchemeParameters();
  ASSERT_EQ(params.size(), 1u);
  params[0].SetRequiresGrad(true);
  Sum(Mul(y, y)).Backward();
  ASSERT_FALSE(params[0].grad().empty());
  // 2-bit and 8-bit reconstructions differ, so α components get distinct
  // gradients (they compete through the softmax).
  EXPECT_NE(params[0].grad()[0], params[0].grad()[1]);
}

TEST(RelaxedSchemeTest, PositiveLambdaDrivesSelectionToLowBits) {
  // Train α on the penalty alone: argmax must move to the smallest width.
  RelaxedOptions opts;
  opts.bit_options = {2, 4, 8};
  opts.lambda = 1.0;
  RelaxedMixQScheme scheme(opts);
  Rng rng(7);
  Tensor x = Tensor::RandomUniform(Shape(32, 16), &rng, -1.0f, 1.0f);
  scheme.BeginStep(true);
  scheme.Quantize("c", x, ComponentKind::kInput, true);  // create α
  auto params = scheme.SchemeParameters();
  for (auto& p : params) p.SetRequiresGrad(true);
  Sgd sgd(params, 1.0f);
  for (int step = 0; step < 100; ++step) {
    sgd.ZeroGrad();
    scheme.BeginStep(true);
    scheme.Quantize("c", x, ComponentKind::kInput, true);
    scheme.PenaltyLoss().Backward();
    sgd.Step();
  }
  EXPECT_EQ(scheme.SelectedBits().at("c"), 2);
  EXPECT_LT(scheme.EffectiveBits("c", 32.0), 3.0);
}

TEST(RelaxedSchemeTest, NegativeLambdaPrefersWideBits) {
  RelaxedOptions opts;
  opts.bit_options = {2, 4, 8};
  opts.lambda = -1.0;  // λ = −ε regime, amplified for a short test
  RelaxedMixQScheme scheme(opts);
  Rng rng(8);
  Tensor x = Tensor::RandomUniform(Shape(32, 16), &rng, -1.0f, 1.0f);
  scheme.BeginStep(true);
  scheme.Quantize("c", x, ComponentKind::kInput, true);
  auto params = scheme.SchemeParameters();
  for (auto& p : params) p.SetRequiresGrad(true);
  Sgd sgd(params, 1.0f);
  for (int step = 0; step < 100; ++step) {
    sgd.ZeroGrad();
    scheme.BeginStep(true);
    scheme.Quantize("c", x, ComponentKind::kInput, true);
    scheme.PenaltyLoss().Backward();
    sgd.Step();
  }
  EXPECT_EQ(scheme.SelectedBits().at("c"), 8);
}

TEST(RelaxedSchemeTest, TaskGradientFavorsAccurateQuantizer) {
  // Loss = ||mix(x) − x||²: the 8-bit candidate reconstructs x better, so
  // optimizing the task loss alone must push α toward 8 bits.
  RelaxedOptions opts;
  opts.bit_options = {2, 8};
  opts.lambda = 0.0;
  RelaxedMixQScheme scheme(opts);
  Rng rng(9);
  Tensor x = Tensor::RandomUniform(Shape(64, 8), &rng, -1.0f, 1.0f);
  scheme.BeginStep(true);
  scheme.Quantize("c", x, ComponentKind::kInput, true);
  auto params = scheme.SchemeParameters();
  for (auto& p : params) p.SetRequiresGrad(true);
  Adam adam(params, 0.1f);
  for (int step = 0; step < 60; ++step) {
    adam.ZeroGrad();
    scheme.BeginStep(true);
    Tensor y = scheme.Quantize("c", x, ComponentKind::kInput, true);
    Tensor err = Sub(y, x);
    Sum(Mul(err, err)).Backward();
    adam.Step();
  }
  EXPECT_EQ(scheme.SelectedBits().at("c"), 8);
}

TEST(RelaxedSchemeTest, SelectedBitsCoverAllComponents) {
  RelaxedMixQScheme scheme(RelaxedOptions{});
  Rng rng(10);
  Tensor x = Tensor::RandomUniform(Shape(4, 4), &rng, -1.0f, 1.0f);
  scheme.BeginStep(true);
  scheme.Quantize("a", x, ComponentKind::kInput, true);
  scheme.Quantize("b", x, ComponentKind::kWeight, true);
  scheme.Quantize("c", x, ComponentKind::kAggregate, true);
  auto bits = scheme.SelectedBits();
  EXPECT_EQ(bits.size(), 3u);
  for (const auto& [id, b] : bits) {
    EXPECT_TRUE(b == 2 || b == 4 || b == 8) << id;
  }
  EXPECT_EQ(scheme.ComponentIds().size(), 3u);
}

}  // namespace
}  // namespace mixq
