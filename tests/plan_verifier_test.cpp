// Copyright 2026 MixQ-GNN Authors
// Tests for the static plan verifier (engine/plan_verifier.h).
//
// The crafted-bad-bundle suite is the core: each test hand-writes a bundle
// whose bytes are structurally valid at the codec level — correct framing,
// correct CRCs, every index within its table — but whose *program* violates
// exactly one invariant of DESIGN.md §6. LoadBundle must reject every one
// with a typed, step-indexed kInvalidArgument, because these are precisely
// the payloads that would drive the unchecked executors out of bounds (or
// silently mis-serve) if they ever reached them. A fuzz regression then
// mutates real bundle payloads and REPAIRS the section checksum, proving
// the CRC is not the last line of defense.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "core/experiment.h"
#include "engine/execution_plan.h"
#include "engine/frontier_plan.h"
#include "engine/model_bundle.h"
#include "engine/plan_verifier.h"
#include "tensor/gemm.h"

namespace mixq {
namespace {

using engine::BundleCheck;
using engine::BundleKind;
using engine::BundleManifest;
using engine::BundleSection;
using engine::CompiledModelPtr;
using engine::CompileModel;
using engine::ExecutionPlan;
using engine::FrontierProgram;
using engine::InspectBundle;
using engine::LoadBundle;
using engine::SaveBundle;
using engine::VerifyBundleFile;
using engine::VerifyFrontierProgram;

// ---- hand-crafted bundle writer --------------------------------------------
// Mirrors the wire format of engine/model_bundle.cc (DESIGN.md §5) so tests
// can express programs the real lowering would never emit.

QuantParams Sym8(float scale) {
  QuantParams p;
  p.scale = scale;
  p.zero_point = 0;
  p.bits = 8;
  p.symmetric = true;
  return p;
}

struct SpecComponent {
  bool identity = true;
  QuantParams params;
};

struct SpecLinear {
  int64_t in = 0, out = 0, out_padded = 0;
  QuantParams weight_params;
  std::vector<float> weight_fq;
  std::vector<float> bias;
  std::vector<int8_t> weight_q8;
  std::vector<int16_t> weight_packed;
};

struct SpecStep {
  uint8_t op = 0;  ///< ExecutionPlan::Op numeric value
  int32_t src = 0, src2 = 0, dst = 0;
  int32_t linear = -1, adj = -1;
  int64_t cols = 0;
  SpecComponent quant;
};

struct SpecIntStep {
  uint8_t op = 0;  ///< ExecutionPlan::IntOp numeric value
  int32_t src = 0, src2 = 0, dst = 0;
  int32_t linear = -1, adj = -1;
  int64_t cols = 0;
  QuantParams src_params, src2_params, out_params;
  std::vector<double> bias_over;
};

struct PlanSpec {
  int64_t in_features = 4, out_dim = 3;
  int32_t num_buffers = 2, final_buffer = 0;
  std::vector<SpecLinear> linears;
  std::vector<SpecComponent> adj_quants;
  std::vector<SpecStep> steps;
  bool has_int8 = false;
  int32_t int_final_buffer = 0;
  QuantParams int_final_params;
  std::vector<SpecIntStep> int_steps;
};

void PutParams(ByteWriter* w, const QuantParams& p) {
  w->PutF32(p.scale);
  w->PutI32(p.zero_point);
  w->PutI32(p.bits);
  w->PutU8(p.symmetric ? 1 : 0);
}

void PutComponent(ByteWriter* w, const SpecComponent& c) {
  w->PutU8(c.identity ? 1 : 0);
  PutParams(w, c.params);
}

void EncodePlan(const PlanSpec& s, ByteWriter* w) {
  w->PutI64(s.in_features);
  w->PutI64(s.out_dim);
  w->PutI32(s.num_buffers);
  w->PutI32(s.final_buffer);
  w->PutI64(static_cast<int64_t>(s.linears.size()));
  for (const SpecLinear& lin : s.linears) {
    w->PutI64(lin.in);
    w->PutI64(lin.out);
    w->PutI64(lin.out_padded);
    PutParams(w, lin.weight_params);
    w->PutPodVector(lin.weight_fq);
    w->PutPodVector(lin.bias);
    w->PutPodVector(lin.weight_q8);
    w->PutPodVector(lin.weight_packed);
  }
  w->PutI64(static_cast<int64_t>(s.adj_quants.size()));
  for (const SpecComponent& c : s.adj_quants) PutComponent(w, c);
  w->PutI64(static_cast<int64_t>(s.steps.size()));
  for (const SpecStep& st : s.steps) {
    w->PutU8(st.op);
    w->PutI32(st.src);
    w->PutI32(st.src2);
    w->PutI32(st.dst);
    w->PutI32(st.linear);
    w->PutI32(st.adj);
    w->PutI64(st.cols);
    PutComponent(w, st.quant);
  }
}

void EncodeInt8(const PlanSpec& s, ByteWriter* w) {
  w->PutI32(s.int_final_buffer);
  PutParams(w, s.int_final_params);
  w->PutI64(static_cast<int64_t>(s.int_steps.size()));
  for (const SpecIntStep& st : s.int_steps) {
    w->PutU8(st.op);
    w->PutI32(st.src);
    w->PutI32(st.src2);
    w->PutI32(st.dst);
    w->PutI32(st.linear);
    w->PutI32(st.adj);
    w->PutI64(st.cols);
    PutParams(w, st.src_params);
    PutParams(w, st.src2_params);
    PutParams(w, st.out_params);
    w->PutPodVector(st.bias_over);
  }
}

void AppendSection(ByteWriter* file, const char* tag, const ByteWriter& payload) {
  file->PutBytes(tag, 4);
  file->PutU64(payload.size());
  file->PutU32(Crc32(payload.buffer().data(), payload.size()));
  file->PutBytes(payload.buffer().data(), payload.size());
}

std::vector<uint8_t> EncodeBundle(const PlanSpec& s) {
  ByteWriter file;
  file.PutBytes("MIXQBNDL", 8);
  file.PutU16(engine::kBundleFormatMajor);
  file.PutU16(engine::kBundleFormatMinor);
  file.PutU32(static_cast<uint32_t>(BundleKind::kModel));

  ByteWriter info;
  info.PutU8(0);  // gcn
  info.PutString("crafted");
  info.PutF64(8.0);             // avg_bits
  info.PutI64(0);               // param_count
  info.PutI64(s.in_features);
  info.PutI64(s.out_dim);
  info.PutU8(s.has_int8 ? 1 : 0);
  info.PutU32(0);  // bit assignment entries
  AppendSection(&file, "INFO", info);

  ByteWriter plan;
  EncodePlan(s, &plan);
  AppendSection(&file, "PLAN", plan);

  if (s.has_int8) {
    ByteWriter int8;
    EncodeInt8(s, &int8);
    AppendSection(&file, "IPLN", int8);
  }
  return file.buffer();
}

/// Unique path under the test temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(testing::TempDir() + "mixq_verifier_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Status LoadSpec(const PlanSpec& s, const std::string& name) {
  TempFile file(name);
  EXPECT_TRUE(WriteFileAtomic(file.path(), EncodeBundle(s)).ok());
  return LoadBundle(file.path()).status();
}

void ExpectRejected(const PlanSpec& s, const std::string& name,
                    const std::string& message_substr) {
  Status status = LoadSpec(s, name);
  ASSERT_FALSE(status.ok()) << name << ": crafted-bad bundle loaded";
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  EXPECT_NE(status.message().find(message_substr), std::string::npos)
      << name << ": expected '" << message_substr << "' in: "
      << status.ToString();
}

/// A minimal well-formed fp32-only program, shaped like one GCN layer:
/// quantize(input)->b0, matmul(b0)->b1, spmm(b1)->b0. Tests mutate exactly
/// one aspect of it.
PlanSpec BaselineFp32() {
  PlanSpec s;
  s.in_features = 4;
  s.out_dim = 3;
  s.num_buffers = 2;
  s.final_buffer = 0;

  SpecLinear lin;
  lin.in = 4;
  lin.out = 3;
  lin.out_padded = 3;
  lin.weight_params = Sym8(0.1f);
  lin.weight_fq.assign(static_cast<size_t>(lin.in * lin.out_padded), 0.25f);
  s.linears.push_back(lin);

  SpecComponent adj;
  adj.identity = true;
  s.adj_quants.push_back(adj);

  SpecStep quantize;
  quantize.op = 0;  // kQuantize
  quantize.src = ExecutionPlan::kInput;
  quantize.dst = 0;
  quantize.cols = 4;
  quantize.quant = {false, Sym8(0.05f)};
  s.steps.push_back(quantize);

  SpecStep matmul;
  matmul.op = 1;  // kMatMul
  matmul.src = 0;
  matmul.dst = 1;
  matmul.linear = 0;
  matmul.cols = 3;
  s.steps.push_back(matmul);

  SpecStep spmm;
  spmm.op = 2;  // kSpmm
  spmm.src = 1;
  spmm.dst = 0;
  spmm.adj = 0;
  spmm.cols = 3;
  s.steps.push_back(spmm);
  return s;
}

/// BaselineFp32 plus a consistent integer program over the same tables:
/// quantize_input->b0, gemm_requant(b0)->b1, spmm_requant(b1)->b0.
PlanSpec BaselineInt8() {
  PlanSpec s = BaselineFp32();
  s.has_int8 = true;

  SpecLinear& lin = s.linears[0];
  lin.weight_q8.assign(static_cast<size_t>(lin.in * lin.out_padded), 3);
  lin.weight_packed.resize(
      static_cast<size_t>(PackedPairSize(lin.in, lin.out_padded)));
  PackInt8PairB(lin.weight_q8.data(), lin.in, lin.out_padded,
                lin.weight_packed.data());

  s.adj_quants[0] = {false, Sym8(0.02f)};

  const QuantParams p_in = Sym8(0.05f);
  const QuantParams p_gemm = Sym8(0.08f);
  const QuantParams p_spmm = Sym8(0.09f);

  SpecIntStep quantize;
  quantize.op = 0;  // kQuantizeInput
  quantize.src = ExecutionPlan::kInput;
  quantize.dst = 0;
  quantize.cols = 4;
  quantize.out_params = p_in;
  s.int_steps.push_back(quantize);

  SpecIntStep gemm;
  gemm.op = 1;  // kGemmRequant
  gemm.src = 0;
  gemm.dst = 1;
  gemm.linear = 0;
  gemm.cols = 3;
  gemm.src_params = p_in;
  gemm.out_params = p_gemm;
  s.int_steps.push_back(gemm);

  SpecIntStep spmm;
  spmm.op = 2;  // kSpmmRequant
  spmm.src = 1;
  spmm.dst = 0;
  spmm.adj = 0;
  spmm.cols = 3;
  spmm.src_params = p_gemm;
  spmm.out_params = p_spmm;
  s.int_steps.push_back(spmm);

  s.int_final_buffer = 0;
  s.int_final_params = p_spmm;
  return s;
}

// ---- crafted bundles: the baselines themselves must load -------------------
// Without this, every rejection below could be the framing being wrong
// rather than the verifier working.

TEST(PlanVerifierTest, CraftedBaselineFp32Loads) {
  Status status = LoadSpec(BaselineFp32(), "base_fp32.mqb");
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(PlanVerifierTest, CraftedBaselineInt8Loads) {
  Status status = LoadSpec(BaselineInt8(), "base_int8.mqb");
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// ---- one test per invariant class ------------------------------------------

// 1. Dataflow: a step reads a scratch buffer no earlier step wrote. The
// executor would consume uninitialized memory.
TEST(PlanVerifierTest, RejectsReadOfNeverWrittenBuffer) {
  PlanSpec s = BaselineFp32();
  s.steps[1].src = 1;  // matmul reads b1 before anything writes it
  ExpectRejected(s, "unwritten.mqb", "before any step writes it");
}

// 2. GEMM shape chain: the step's declared width disagrees with the
// linear's output width, desynchronizing every later buffer size.
TEST(PlanVerifierTest, RejectsGemmWidthMismatch) {
  PlanSpec s = BaselineFp32();
  s.steps[1].cols = 2;
  ExpectRejected(s, "gemm_width.mqb", "linear 0 produces 3");
}

// 3. SpMM preserves width; a declared change would make the executor write
// rows of the wrong stride.
TEST(PlanVerifierTest, RejectsSpmmWidthChange) {
  PlanSpec s = BaselineFp32();
  s.steps[2].cols = 2;
  ExpectRejected(s, "spmm_width.mqb", "SpMM preserves width");
}

// 4. Final output contract: the buffer Predict copies out must hold exactly
// CompiledModelInfo's out_dim columns.
TEST(PlanVerifierTest, RejectsFinalShapeMismatch) {
  PlanSpec s = BaselineFp32();
  s.steps.pop_back();     // drop the spmm: b0 last holds 4 columns
  s.adj_quants.clear();   // keep the table free of danglers
  ExpectRejected(s, "final_shape.mqb", "promises 3 logits");
}

// 5. Quantize steps must carry a real quantizer — the lowering never emits
// an identity quantize, so one in a bundle is a forged program.
TEST(PlanVerifierTest, RejectsIdentityQuantizeStep) {
  PlanSpec s = BaselineFp32();
  s.steps[0].quant.identity = true;
  ExpectRejected(s, "identity_quant.mqb", "identity component");
}

// 6. Cross-table references are exact: only MatMul steps may carry a linear
// index (the codec only range-checks it on MatMul steps, so a stray index
// elsewhere is codec-clean).
TEST(PlanVerifierTest, RejectsStrayLinearIndex) {
  PlanSpec s = BaselineFp32();
  s.steps[0].linear = 0;
  ExpectRejected(s, "stray_linear.mqb", "non-MatMul step carries linear index");
}

// 7. Dangling table entries: every lowered weight/quantizer must be
// reachable from some step, else program and tables disagree about the
// model.
TEST(PlanVerifierTest, RejectsDanglingAdjacencyQuantizer) {
  PlanSpec s = BaselineFp32();
  s.adj_quants.push_back({false, Sym8(0.5f)});
  ExpectRejected(s, "dangling_adj.mqb", "dangling");
}

// 8. Packed-weight consistency: the int8 GEMM consumes only weight_packed,
// so it must BE the pair-interleaving of the audited codes. (The codec only
// checks sizes.)
TEST(PlanVerifierTest, RejectsPackedWeightMismatch) {
  PlanSpec s = BaselineInt8();
  s.linears[0].weight_packed[1] ^= 1;
  ExpectRejected(s, "packed_mismatch.mqb",
                 "packed weights do not match");
}

// 9. Quantizer scale chain: each integer step's src_params must equal the
// grid its producer wrote — the requant constant folds the producer's
// scale, so a break is silently wrong arithmetic on every logit.
TEST(PlanVerifierTest, RejectsInt8ScaleChainBreak) {
  PlanSpec s = BaselineInt8();
  s.int_steps[1].src_params = Sym8(0.25f);  // producer wrote 0.05
  ExpectRejected(s, "chain_break.mqb", "codes were produced on grid");
}

// 10. The integer executor indexes scratch code buffers directly — a
// non-QuantizeInput step sourcing kInput (-1) is an out-of-bounds read the
// codec's field-local check happens to allow. This is the verifier closing
// a real hole.
TEST(PlanVerifierTest, RejectsInt8StepReadingInputMatrix) {
  PlanSpec s = BaselineInt8();
  s.int_steps.resize(1);  // keep only quantize_input -> b0
  SpecIntStep relu;
  relu.op = 4;  // kRelu
  relu.src = ExecutionPlan::kInput;
  relu.dst = 1;
  relu.cols = 4;
  s.int_steps.push_back(relu);
  s.int_final_buffer = 1;
  ExpectRejected(s, "int8_input_src.mqb",
                 "integer executor cannot read the input");
}

// 11. Int8 codes demand a symmetric grid with zero point 0 (the Int8able
// lowering gate, re-stated as a load-time contract).
TEST(PlanVerifierTest, RejectsAsymmetricInt8Codes) {
  PlanSpec s = BaselineInt8();
  s.int_steps[0].out_params.symmetric = false;
  s.int_steps[0].out_params.zero_point = 3;
  ExpectRejected(s, "asym_codes.mqb", "symmetric quantizer with zero point 0");
}

// 12. Add operands must be scratch buffers: FrontierProgram::Build aborts
// (MIXQ_CHECK) on an add-from-input plan, so a bundle shaped that way was a
// remote crash of the serving process until the verifier rejected it first.
TEST(PlanVerifierTest, RejectsAddFromInputMatrix) {
  PlanSpec s = BaselineFp32();
  s.steps.resize(1);  // quantize -> b0 (4 cols)
  s.adj_quants.clear();
  s.linears.clear();
  SpecStep add;
  add.op = 3;  // kAdd
  add.src = ExecutionPlan::kInput;
  add.src2 = 0;
  add.dst = 1;
  add.cols = 4;
  s.steps.push_back(add);
  s.final_buffer = 1;
  s.out_dim = 4;
  ExpectRejected(s, "add_input.mqb", "add operands must be scratch buffers");
}

// 13. bias_over is what the integer executor actually applies in place of
// the bias; a stale or tampered vector serves wrong logits with no other
// symptom. The verifier recomputes it bit-for-bit.
TEST(PlanVerifierTest, RejectsTamperedBiasOverScale) {
  PlanSpec s = BaselineInt8();
  SpecLinear& lin = s.linears[0];
  lin.bias = {0.5f, -0.25f, 1.0f};
  SpecIntStep& gemm = s.int_steps[1];
  const double inv_out = 1.0 / gemm.out_params.scale;
  for (float b : lin.bias) {
    gemm.bias_over.push_back(static_cast<double>(b) * inv_out);
  }
  // Consistent version must load...
  EXPECT_TRUE(LoadSpec(s, "bias_ok.mqb").ok());
  // ...one perturbed entry must not.
  gemm.bias_over[1] += 1e-9;
  ExpectRejected(s, "bias_tampered.mqb", "disagrees with bias[j]");
}

// 14. Declared dims must match the metadata the caller sees
// (CompiledModelInfo): the bundle-level cross-check plus the verifier's
// PlanShapes contract.
TEST(PlanVerifierTest, RejectsFinalGridMismatch) {
  PlanSpec s = BaselineInt8();
  s.int_final_params = Sym8(0.5f);  // final codes live on 0.09
  ExpectRejected(s, "final_grid.mqb", "dequantizes with");
}

// ---- real models: everything the repo can lower verifies clean -------------

NodeDataset VerifierDataset(uint64_t seed = 7) {
  CitationConfig c;
  c.name = "verifier-tiny";
  c.num_nodes = 120;
  c.num_classes = 3;
  c.feature_dim = 16;
  c.avg_degree = 3.0;
  c.homophily = 0.8;
  c.train_per_class = 8;
  c.val_count = 20;
  c.test_count = 40;
  c.seed = seed;
  return GenerateCitation(c);
}

std::shared_ptr<ModelArtifact> TrainArtifact(const SchemeRef& scheme,
                                             NodeModelKind model) {
  NodeExperimentConfig cfg;
  cfg.model = model;
  cfg.hidden = 10;
  cfg.num_layers = 2;
  cfg.train.epochs = 6;
  cfg.train.lr = 0.05f;
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(VerifierDataset(), cfg, scheme);
  spec.seed = 7;
  spec.keep_artifact = true;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  EXPECT_TRUE(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ValueOrDie().artifact;
}

TEST(PlanVerifierTest, RealLoweringsVerifyCleanOnBothBackbones) {
  for (NodeModelKind backbone : {NodeModelKind::kGcn, NodeModelKind::kSage}) {
    for (const SchemeRef& ref : {SchemeRef::Fp32(), SchemeRef::Qat(8)}) {
      SCOPED_TRACE(backbone == NodeModelKind::kGcn ? "gcn" : "sage");
      auto artifact = TrainArtifact(ref, backbone);
      // CompileModel itself runs VerifyPlan under MIXQ_VERIFY=1 (set for
      // this suite by CMake) — a verifier false positive would fail here.
      Result<CompiledModelPtr> model = CompileModel(*artifact);
      ASSERT_TRUE(model.ok()) << model.status().ToString();

      TempFile file("clean.mqb");
      ASSERT_TRUE(SaveBundle(*model.ValueOrDie(), file.path()).ok());
      for (const BundleCheck& check : VerifyBundleFile(file.path())) {
        EXPECT_TRUE(check.status.ok())
            << check.section << ": " << check.status.ToString();
      }
      // The full verdict chain must be present: the structural verifier
      // ("plan") followed by the value-range prover ("ranges").
      std::vector<BundleCheck> checks = VerifyBundleFile(file.path());
      ASSERT_GE(checks.size(), 2u);
      EXPECT_EQ(checks[checks.size() - 2].section, "plan");
      EXPECT_EQ(checks.back().section, "ranges");
    }
  }
}

TEST(PlanVerifierTest, VerifyBundleFileReportsFailingSection) {
  PlanSpec s = BaselineFp32();
  s.steps[1].cols = 2;  // GEMM width mismatch: codec-clean, verifier-bad
  TempFile file("verdicts.mqb");
  ASSERT_TRUE(WriteFileAtomic(file.path(), EncodeBundle(s)).ok());

  std::vector<BundleCheck> checks = VerifyBundleFile(file.path());
  ASSERT_FALSE(checks.empty());
  // Everything up to the last verdict passed (header, section CRCs, decode);
  // the last one is the plan verifier rejecting.
  for (size_t i = 0; i + 1 < checks.size(); ++i) {
    EXPECT_TRUE(checks[i].status.ok()) << checks[i].section;
  }
  EXPECT_EQ(checks.back().section, "plan");
  EXPECT_EQ(checks.back().status.code(), StatusCode::kInvalidArgument);
}

TEST(PlanVerifierTest, FrontierProgramVerifiesAgainstItsPlan) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8), NodeModelKind::kGcn);
  Result<CompiledModelPtr> model = CompileModel(*artifact);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  // Point query on a large-enough graph: Build materializes a pruned
  // schedule (and under MIXQ_VERIFY=1 self-checks it); verify it again
  // explicitly here, in both precisions.
  for (bool int8 : {false, true}) {
    std::unique_ptr<FrontierProgram> program =
        model.ValueOrDie()->BuildFrontierProgram(
            artifact->op, {1, 5, 9}, int8, nullptr, /*max_cost_fraction=*/1.0);
    if (program == nullptr) continue;  // pruning judged not worthwhile
    Status status =
        VerifyFrontierProgram(*model.ValueOrDie()->plan(), *program);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

// ---- fuzz regression: CRC-repaired payload mutations -----------------------

/// Recomputes and rewrites the stored checksum of `section` so a payload
/// mutation survives the CRC gate — the adversary model the verifier
/// exists for.
void RepairCrc(std::vector<uint8_t>* bytes, const BundleSection& section) {
  const uint32_t crc =
      Crc32(bytes->data() + section.offset, static_cast<size_t>(section.size));
  for (int i = 0; i < 4; ++i) {
    (*bytes)[static_cast<size_t>(section.offset) - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
}

TEST(PlanVerifierTest, CrcRepairedPayloadMutationsNeverReachAnExecutor) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8), NodeModelKind::kGcn);
  Result<CompiledModelPtr> model = CompileModel(*artifact);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  TempFile file("fuzz.mqb");
  ASSERT_TRUE(SaveBundle(*model.ValueOrDie(), file.path()).ok());

  std::vector<uint8_t> pristine;
  ASSERT_TRUE(ReadFileBytes(file.path(), &pristine).ok());
  BundleManifest manifest = InspectBundle(file.path()).MoveValueOrDie();

  int loaded_fine = 0, rejected = 0;
  for (const BundleSection& section : manifest.sections) {
    if (section.tag != "PLAN" && section.tag != "IPLN") continue;
    for (int trial = 0; trial < 160; ++trial) {
      std::vector<uint8_t> mutated = pristine;
      // Deterministic scatter over the payload; XOR patterns cover single
      // bits, full bytes, and sign/width-bit flips of little-endian fields.
      const size_t pos = static_cast<size_t>(section.offset) +
                         (static_cast<size_t>(trial) * 2654435761u) %
                             static_cast<size_t>(section.size);
      mutated[pos] ^= static_cast<uint8_t>(1u << (trial % 8));
      RepairCrc(&mutated, section);

      TempFile mutated_file("fuzz_mut.mqb");
      ASSERT_TRUE(WriteFileAtomic(mutated_file.path(), mutated).ok());
      Result<CompiledModelPtr> reloaded = LoadBundle(mutated_file.path());
      if (!reloaded.ok()) {
        ++rejected;
        continue;
      }
      // The codec and verifier accepted the mutation, so it must be
      // semantically harmless (weight values, quantizer scales): every
      // executor the model exposes must run to completion in bounds.
      ++loaded_fine;
      const CompiledModelPtr& m = reloaded.ValueOrDie();
      Result<Tensor> fp32 = m->Predict(artifact->features, artifact->op);
      EXPECT_TRUE(fp32.ok()) << section.tag << " trial " << trial << ": "
                             << fp32.status().ToString();
      if (m->info().lowered_int8) {
        Result<Tensor> int8 =
            m->PredictQuantized(artifact->features, artifact->op);
        EXPECT_TRUE(int8.ok()) << section.tag << " trial " << trial << ": "
                               << int8.status().ToString();
      }
    }
  }
  // The sweep must exercise both outcomes, else it is vacuous.
  EXPECT_GT(rejected, 0) << "no mutation was ever rejected";
  EXPECT_GT(loaded_fine, 0) << "no mutation ever survived to an executor";
}

}  // namespace
}  // namespace mixq
