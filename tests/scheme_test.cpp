// Copyright 2026 MixQ-GNN Authors
// Tests for the quantization scheme strategies (FP32 / QAT / per-component /
// Degree-Quant protection).
#include <gtest/gtest.h>

#include "quant/scheme.h"
#include "tensor/ops.h"

namespace mixq {
namespace {

Tensor SomeActivations(uint64_t seed = 1, int64_t n = 8, int64_t f = 4) {
  Rng rng(seed);
  return Tensor::RandomUniform(Shape(n, f), &rng, -1.0f, 1.0f);
}

TEST(NoQuantSchemeTest, IdentityAndTracksIds) {
  NoQuantScheme scheme;
  Tensor x = SomeActivations();
  Tensor y = scheme.Quantize("a", x, ComponentKind::kInput, true);
  EXPECT_EQ(y.impl_ptr(), x.impl_ptr());
  scheme.Quantize("b", x, ComponentKind::kWeight, true);
  scheme.Quantize("a", x, ComponentKind::kInput, true);
  EXPECT_EQ(scheme.ComponentIds().size(), 2u);
  EXPECT_DOUBLE_EQ(scheme.EffectiveBits("a", 32.0), 32.0);
}

TEST(UniformQatSchemeTest, QuantizesEveryComponentAtConfiguredBits) {
  UniformQatScheme scheme(4);
  Tensor x = SomeActivations();
  Tensor y = scheme.Quantize("c1", x, ComponentKind::kInput, true);
  EXPECT_NE(y.impl_ptr(), x.impl_ptr());
  EXPECT_DOUBLE_EQ(scheme.EffectiveBits("c1", 32.0), 4.0);
  EXPECT_DOUBLE_EQ(scheme.EffectiveBits("unseen", 32.0), 32.0);
  // Values snapped to a 4-bit grid.
  int distinct = 0;
  std::set<float> uniq(y.data().begin(), y.data().end());
  distinct = static_cast<int>(uniq.size());
  EXPECT_LE(distinct, 15);  // 2^4 - 1 levels
}

TEST(UniformQatSchemeTest, ReusesQuantizerPerComponent) {
  UniformQatScheme scheme(8);
  Tensor a = Tensor::FromVector(Shape(1, 2), {-1.0f, 1.0f});
  scheme.Quantize("x", a, ComponentKind::kInput, true);
  // Second call with a smaller range must keep (EMA-smoothed) history.
  Tensor b = Tensor::FromVector(Shape(1, 2), {-0.1f, 0.1f});
  scheme.Quantize("x", b, ComponentKind::kInput, true);
  EXPECT_EQ(scheme.ComponentIds().size(), 1u);
}

TEST(DegreeProtectionTest, ProbabilitiesOrderedByDegree) {
  std::vector<int64_t> degrees = {0, 10, 3, 50};
  auto probs = MakeDegreeProtectionProbs(degrees, 0.0, 0.2);
  EXPECT_DOUBLE_EQ(probs[0], 0.0);                 // lowest degree
  EXPECT_DOUBLE_EQ(probs[3], 0.2);                 // highest degree
  EXPECT_LT(probs[2], probs[1]);                   // 3 < 10
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 0.2);
  }
}

TEST(DegreeProtectionTest, EmptyInput) {
  EXPECT_TRUE(MakeDegreeProtectionProbs({}).empty());
}

TEST(DqSchemeTest, ProtectsHighDegreeRowsStochastically) {
  QatOptions opts;
  opts.degree_protect = true;
  // Node 0 always protected, node 1 never.
  opts.protect_probs = {1.0, 0.0};
  opts.mask_seed = 3;
  UniformQatScheme scheme(2, opts);
  Tensor x = Tensor::FromVector(Shape(2, 2), {0.37f, -0.61f, 0.37f, -0.61f});
  scheme.BeginStep(true);
  Tensor y = scheme.Quantize("agg", x, ComponentKind::kAggregate, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.37f);   // protected row: exact
  EXPECT_NE(y.at(1, 0), 0.37f);         // quantized row: snapped
}

TEST(DqSchemeTest, NoProtectionAtEval) {
  QatOptions opts;
  opts.degree_protect = true;
  opts.protect_probs = {1.0, 1.0};
  UniformQatScheme scheme(2, opts);
  Tensor x = Tensor::FromVector(Shape(2, 2), {0.37f, -0.61f, 0.37f, -0.61f});
  scheme.BeginStep(true);
  scheme.Quantize("agg", x, ComponentKind::kAggregate, true);  // init observer
  scheme.BeginStep(false);
  Tensor y = scheme.Quantize("agg", x, ComponentKind::kAggregate, false);
  // At inference everything is quantized (DQ removes masks at deployment).
  EXPECT_NE(y.at(0, 0), 0.37f);
}

TEST(DqSchemeTest, WeightsNeverMasked) {
  QatOptions opts;
  opts.degree_protect = true;
  opts.protect_probs = {1.0, 1.0};
  UniformQatScheme scheme(2, opts);
  Tensor w = Tensor::FromVector(Shape(2, 2), {0.37f, -0.61f, 0.22f, -0.8f});
  scheme.BeginStep(true);
  Tensor y = scheme.Quantize("w", w, ComponentKind::kWeight, true);
  EXPECT_NE(y.at(0, 0), 0.37f);  // quantized despite all-protect mask
}

TEST(PerComponentSchemeTest, MapAndDefaultBits) {
  PerComponentScheme scheme({{"a", 2}, {"b", 8}}, /*default_bits=*/4);
  Tensor x = SomeActivations();
  scheme.Quantize("a", x, ComponentKind::kInput, true);
  scheme.Quantize("b", x, ComponentKind::kInput, true);
  scheme.Quantize("c", x, ComponentKind::kInput, true);
  EXPECT_DOUBLE_EQ(scheme.EffectiveBits("a", 32.0), 2.0);
  EXPECT_DOUBLE_EQ(scheme.EffectiveBits("b", 32.0), 8.0);
  EXPECT_DOUBLE_EQ(scheme.EffectiveBits("c", 32.0), 4.0);
  EXPECT_EQ(scheme.assignment().size(), 2u);
}

TEST(PerComponentSchemeTest, LowerBitsCoarserGrid) {
  PerComponentScheme scheme({{"lo", 2}, {"hi", 8}}, 8);
  Rng rng(5);
  Tensor x = Tensor::RandomUniform(Shape(64, 4), &rng, -1.0f, 1.0f);
  Tensor ylo = scheme.Quantize("lo", x, ComponentKind::kInput, true);
  Tensor yhi = scheme.Quantize("hi", x, ComponentKind::kInput, true);
  std::set<float> lo_levels(ylo.data().begin(), ylo.data().end());
  std::set<float> hi_levels(yhi.data().begin(), yhi.data().end());
  EXPECT_LE(lo_levels.size(), 3u);
  EXPECT_GT(hi_levels.size(), 20u);
}

TEST(ComponentKindTest, NamesAndNodeFeatureClassification) {
  EXPECT_STREQ(ComponentKindName(ComponentKind::kWeight), "weight");
  EXPECT_STREQ(ComponentKindName(ComponentKind::kAdjacency), "adjacency");
  EXPECT_TRUE(IsNodeFeatureKind(ComponentKind::kInput));
  EXPECT_TRUE(IsNodeFeatureKind(ComponentKind::kAggregate));
  EXPECT_FALSE(IsNodeFeatureKind(ComponentKind::kWeight));
  EXPECT_FALSE(IsNodeFeatureKind(ComponentKind::kAdjacency));
}

TEST(ComponentConfigTest, KindSpecificObservers) {
  QatOptions opts;
  opts.activation_observer = ObserverKind::kPercentile;
  auto wc = MakeComponentConfig(ComponentKind::kWeight, 8, opts);
  EXPECT_EQ(wc.observer, ObserverKind::kMinMax);
  auto ac = MakeComponentConfig(ComponentKind::kAggregate, 8, opts);
  EXPECT_EQ(ac.observer, ObserverKind::kPercentile);
  auto adjc = MakeComponentConfig(ComponentKind::kAdjacency, 8, opts);
  EXPECT_TRUE(adjc.symmetric);  // keeps Za = 0 for Theorem-1 fast path
}

}  // namespace
}  // namespace mixq
