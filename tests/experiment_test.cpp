// Copyright 2026 MixQ-GNN Authors
// Tests for the Experiment facade: up-front spec validation (Status instead
// of CHECK-crashes), end-to-end node/graph runs through the registry, and
// agreement with the legacy SchemeSpec entry points.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/pipelines.h"

namespace mixq {
namespace {

NodeDataset TinyCitation(uint64_t seed = 1) {
  CitationConfig c;
  c.name = "tiny-citation";
  c.num_nodes = 200;
  c.num_classes = 3;
  c.feature_dim = 24;
  c.avg_degree = 3.0;
  c.homophily = 0.85;
  c.train_per_class = 10;
  c.val_count = 40;
  c.test_count = 80;
  c.seed = seed;
  return GenerateCitation(c);
}

NodeExperimentConfig TinyConfig() {
  NodeExperimentConfig cfg;
  cfg.hidden = 16;
  cfg.num_layers = 2;
  cfg.dropout = 0.3f;
  cfg.train.epochs = 25;
  cfg.train.lr = 0.05f;
  return cfg;
}

TEST(ExperimentSpecTest, UnknownSchemeFailsWithNotFound) {
  ExperimentSpec spec = ExperimentSpec::NodeClassification(
      TinyCitation(), TinyConfig(), SchemeRef("does-not-exist"));
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  EXPECT_FALSE(experiment.ok());
  EXPECT_EQ(experiment.status().code(), StatusCode::kNotFound);
}

TEST(ExperimentSpecTest, ValidationErrors) {
  // Empty dataset.
  {
    ExperimentSpec spec = ExperimentSpec::NodeClassification(
        NodeDataset{}, TinyConfig(), SchemeRef::Fp32());
    EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  }
  // Zero epochs.
  {
    NodeExperimentConfig cfg = TinyConfig();
    cfg.train.epochs = 0;
    ExperimentSpec spec = ExperimentSpec::NodeClassification(
        TinyCitation(), cfg, SchemeRef::Fp32());
    EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  }
  // Bad hidden width.
  {
    NodeExperimentConfig cfg = TinyConfig();
    cfg.hidden = 0;
    ExperimentSpec spec = ExperimentSpec::NodeClassification(
        TinyCitation(), cfg, SchemeRef::Fp32());
    EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  }
  // Unknown metric string.
  {
    NodeDataset ds = TinyCitation();
    ds.metric = "f1";
    ExperimentSpec spec =
        ExperimentSpec::NodeClassification(ds, TinyConfig(), SchemeRef::Fp32());
    EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  }
  // Malformed scheme parameters are caught before any training.
  {
    SchemeRef ref("qat");
    ref.params.Set("bits", "wide");
    ExperimentSpec spec =
        ExperimentSpec::NodeClassification(TinyCitation(), TinyConfig(), ref);
    EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  }
  // Graph task: too few folds, artifact unsupported.
  {
    GraphDataset ds = GenerateTu([] {
      TuConfig c;
      c.num_graphs = 20;
      c.avg_nodes = 12.0;
      return c;
    }());
    GraphExperimentConfig cfg;
    cfg.folds = 1;
    ExperimentSpec spec =
        ExperimentSpec::GraphClassification(ds, cfg, SchemeRef::Fp32());
    EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);

    cfg.folds = 3;
    ExperimentSpec spec2 =
        ExperimentSpec::GraphClassification(ds, cfg, SchemeRef::Fp32());
    spec2.keep_artifact = true;
    EXPECT_EQ(spec2.Validate().code(), StatusCode::kNotImplemented);
  }
}

TEST(ExperimentTest, Fp32NodeRunProducesReport) {
  ExperimentSpec spec = ExperimentSpec::NodeClassification(
      TinyCitation(1), TinyConfig(), SchemeRef::Fp32());
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const ExperimentReport& r = report.ValueOrDie();
  EXPECT_EQ(r.task, TaskKind::kNodeClassification);
  EXPECT_EQ(r.scheme_label, "FP32");
  EXPECT_GT(r.node.test_metric, 0.4);
  EXPECT_DOUBLE_EQ(r.node.avg_bits, 32.0);
  EXPECT_GT(r.node.model_param_count, 0);
  EXPECT_EQ(r.artifact, nullptr);  // keep_artifact not requested
}

TEST(ExperimentTest, AgreesWithLegacyEntryPoint) {
  // The SchemeSpec shim routes through the same facade: results must match
  // exactly for identical seeds.
  NodeDataset ds = TinyCitation(7);
  NodeExperimentConfig cfg = TinyConfig();

  ExperimentResult legacy = RunNodeExperiment(ds, cfg, SchemeSpec::Qat(4));

  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(ds, cfg, SchemeRef::Qat(4));
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  ASSERT_TRUE(experiment.ok());
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_DOUBLE_EQ(report.ValueOrDie().node.test_metric, legacy.test_metric);
  EXPECT_DOUBLE_EQ(report.ValueOrDie().node.gbitops, legacy.gbitops);
}

TEST(ExperimentTest, MixQSearchSelectsBitsAndKeepsArtifact) {
  SchemeRef mixq = SchemeRef::MixQ(0.05, {2, 4, 8});
  mixq.params.SetInt("search_epochs", 10);
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(TinyCitation(2), TinyConfig(), mixq);
  spec.keep_artifact = true;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const ExperimentReport& r = report.ValueOrDie();
  EXPECT_FALSE(r.node.selected_bits.empty());
  for (const auto& [id, bits] : r.node.selected_bits) {
    EXPECT_TRUE(bits == 2 || bits == 4 || bits == 8) << id << "=" << bits;
  }
  EXPECT_GT(r.node.quant_param_count, 0);
  ASSERT_NE(r.artifact, nullptr);
  EXPECT_NE(r.artifact->gcn, nullptr);
  EXPECT_NE(r.artifact->scheme, nullptr);
  EXPECT_NE(r.artifact->op, nullptr);
  EXPECT_EQ(r.artifact->selected_bits, r.node.selected_bits);
}

TEST(ExperimentTest, RepeatExperimentAggregates) {
  auto make = [](uint64_t seed) { return TinyCitation(seed); };
  Result<RepeatedResult> agg =
      RepeatExperiment(make, TinyConfig(), SchemeRef::Fp32(), 2);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  EXPECT_EQ(agg.ValueOrDie().runs.size(), 2u);
  EXPECT_GT(agg.ValueOrDie().mean_metric, 0.3);

  EXPECT_EQ(RepeatExperiment(make, TinyConfig(), SchemeRef::Fp32(), 0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ExperimentTest, GraphTaskRunsThroughFacade) {
  TuConfig c;
  c.num_graphs = 24;
  c.avg_nodes = 12.0;
  GraphDataset ds = GenerateTu(c);

  GraphExperimentConfig cfg;
  cfg.hidden = 8;
  cfg.num_layers = 2;
  cfg.folds = 3;
  cfg.train.epochs = 5;
  ExperimentSpec spec =
      ExperimentSpec::GraphClassification(ds, cfg, SchemeRef::Qat(8));
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.ValueOrDie().graph.fold_accuracies.size(), 3u);
  EXPECT_GT(report.ValueOrDie().graph.mean, 0.0);
}

}  // namespace
}  // namespace mixq
