// Copyright 2026 MixQ-GNN Authors
// Tests for CSR construction, normalizations, SpMM kernels, and the
// differentiable Spmm/SpmmValues ops.
#include <gtest/gtest.h>

#include "sparse/csr.h"
#include "sparse/frontier.h"
#include "sparse/reorder.h"
#include "sparse/spmm.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace mixq {
namespace {

CsrMatrix SmallMatrix() {
  // [[0, 2, 0], [1, 0, 3], [0, 0, 4]]
  return CsrMatrix::FromCoo(3, 3, {{0, 1, 2.0f}, {1, 0, 1.0f}, {1, 2, 3.0f},
                                   {2, 2, 4.0f}});
}

TEST(CsrTest, FromCooBasics) {
  CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.RowNnz(0), 1);
  EXPECT_EQ(m.RowNnz(1), 2);
  EXPECT_EQ(m.RowNnz(2), 1);
}

TEST(CsrTest, DuplicatesAreSummed) {
  CsrMatrix m = CsrMatrix::FromCoo(2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_FLOAT_EQ(m.values()[0], 3.5f);
}

TEST(CsrTest, ToDenseRoundTrip) {
  auto dense = SmallMatrix().ToDense();
  const std::vector<float> expected = {0, 2, 0, 1, 0, 3, 0, 0, 4};
  ASSERT_EQ(dense.size(), expected.size());
  for (size_t i = 0; i < dense.size(); ++i) EXPECT_FLOAT_EQ(dense[i], expected[i]);
}

TEST(CsrTest, IdentityIsDiagonal) {
  CsrMatrix eye = CsrMatrix::Identity(4);
  EXPECT_EQ(eye.nnz(), 4);
  auto dense = eye.ToDense();
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(dense[static_cast<size_t>(i * 4 + j)], i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(CsrTest, TransposeIsCorrect) {
  CsrMatrix m = SmallMatrix();
  auto td = m.Transpose().ToDense();
  auto d = m.ToDense();
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(td[static_cast<size_t>(j * 3 + i)],
                      d[static_cast<size_t>(i * 3 + j)]);
    }
  }
}

TEST(CsrTest, WithConstantValues) {
  CsrMatrix m = SmallMatrix().WithConstantValues(1.0f);
  for (float v : m.values()) EXPECT_FLOAT_EQ(v, 1.0f);
  EXPECT_EQ(m.nnz(), 4);
}

TEST(GcnNormalizeTest, SymmetricAndSelfLoops) {
  // Undirected path graph 0-1-2.
  CsrMatrix adj = CsrMatrix::FromCoo(
      3, 3, {{0, 1, 1.0f}, {1, 0, 1.0f}, {1, 2, 1.0f}, {2, 1, 1.0f}});
  CsrMatrix norm = GcnNormalize(adj);
  auto d = norm.ToDense();
  // Degrees (with +1 self loop): d0=2, d1=3, d2=2.
  EXPECT_NEAR(d[0], 1.0 / 2.0, 1e-6);                    // (0,0): 1/sqrt(2*2)
  EXPECT_NEAR(d[1], 1.0 / std::sqrt(6.0), 1e-6);         // (0,1)
  EXPECT_NEAR(d[4], 1.0 / 3.0, 1e-6);                    // (1,1)
  // Symmetry of the normalized operator.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(d[static_cast<size_t>(i * 3 + j)], d[static_cast<size_t>(j * 3 + i)],
                  1e-6);
    }
  }
}

TEST(RowNormalizeTest, RowsSumToOne) {
  CsrMatrix adj = SmallMatrix();
  CsrMatrix norm = RowNormalize(adj);
  for (int64_t r = 0; r < norm.rows(); ++r) {
    double s = 0.0;
    for (int64_t k = norm.row_ptr()[static_cast<size_t>(r)];
         k < norm.row_ptr()[static_cast<size_t>(r + 1)]; ++k) {
      s += norm.values()[static_cast<size_t>(k)];
    }
    if (norm.RowNnz(r) > 0) {
      EXPECT_NEAR(s, 1.0, 1e-6);
    }
  }
}

TEST(SpmmRawTest, MatchesDense) {
  CsrMatrix a = SmallMatrix();
  Tensor x = Tensor::FromVector(Shape(3, 2), {1, 2, 3, 4, 5, 6});
  std::vector<float> y(6);
  SpmmRaw(a, x.data().data(), 2, y.data());
  // Row0 = 2*x1 = (6,8); Row1 = 1*x0 + 3*x2 = (16,20); Row2 = 4*x2 = (20,24).
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
  EXPECT_FLOAT_EQ(y[2], 16.0f);
  EXPECT_FLOAT_EQ(y[3], 20.0f);
  EXPECT_FLOAT_EQ(y[4], 20.0f);
  EXPECT_FLOAT_EQ(y[5], 24.0f);
}

TEST(SpmmRawTest, AccumulateAddsToExisting) {
  CsrMatrix a = CsrMatrix::Identity(2);
  Tensor x = Tensor::FromVector(Shape(2, 1), {1, 2});
  std::vector<float> y = {10.0f, 20.0f};
  SpmmRaw(a, x.data().data(), 1, y.data(), /*accumulate=*/true);
  EXPECT_FLOAT_EQ(y[0], 11.0f);
  EXPECT_FLOAT_EQ(y[1], 22.0f);
}

TEST(SpmmIntTest, IntegerAggregation) {
  CsrMatrix a = SmallMatrix();
  std::vector<int32_t> aq = {2, 1, 3, 4};  // matches stored values
  std::vector<int32_t> x = {1, 2, 3, 4, 5, 6};
  std::vector<int64_t> y(6);
  SpmmInt(a, aq.data(), x.data(), 2, y.data());
  EXPECT_EQ(y[0], 6);
  EXPECT_EQ(y[2], 16);
  EXPECT_EQ(y[5], 24);
}

TEST(SparseOperatorTest, TransposePermutationRethreadsValues) {
  auto op = MakeOperator(SmallMatrix());
  const auto& perm = op->transpose_permutation();
  ASSERT_EQ(static_cast<int64_t>(perm.size()), op->nnz());
  // transpose().values()[i] must equal matrix().values()[perm[i]].
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_FLOAT_EQ(op->transpose().values()[i],
                    op->matrix().values()[static_cast<size_t>(perm[i])]);
  }
}

TEST(SparseOperatorTest, EntryRowsInverseOfRowPtr) {
  auto op = MakeOperator(SmallMatrix());
  const auto& rows = op->entry_rows();
  const auto& m = op->matrix();
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t k = m.row_ptr()[static_cast<size_t>(r)];
         k < m.row_ptr()[static_cast<size_t>(r + 1)]; ++k) {
      EXPECT_EQ(rows[static_cast<size_t>(k)], r);
    }
  }
}

TEST(SpmmOpTest, GradientThroughX) {
  auto op = MakeOperator(SmallMatrix());
  Rng rng(1);
  Tensor x = Tensor::RandomUniform(Shape(3, 4), &rng, -1.0f, 1.0f);
  auto res = CheckGradient(x, [&] { return Sum(Mul(Spmm(op, x), Spmm(op, x))); });
  EXPECT_TRUE(res.ok()) << res.max_abs_error;
}

TEST(SpmmValuesTest, MatchesPlainSpmmForward) {
  auto op = MakeOperator(SmallMatrix());
  Rng rng(2);
  Tensor x = Tensor::RandomUniform(Shape(3, 3), &rng, -1.0f, 1.0f);
  Tensor values = Tensor::FromVector(Shape(op->nnz()), op->matrix().values());
  Tensor y1 = Spmm(op, x);
  Tensor y2 = SpmmValues(op, values, x);
  for (size_t i = 0; i < y1.data().size(); ++i) {
    EXPECT_NEAR(y1.data()[i], y2.data()[i], 1e-5);
  }
}

TEST(SpmmValuesTest, GradientThroughValuesAndX) {
  auto op = MakeOperator(SmallMatrix());
  Rng rng(3);
  Tensor x = Tensor::RandomUniform(Shape(3, 3), &rng, -1.0f, 1.0f);
  Tensor values = Tensor::RandomUniform(Shape(op->nnz()), &rng, 0.5f, 1.5f);
  values.SetRequiresGrad(true);
  auto rv = CheckGradient(values, [&] { return Sum(Mul(SpmmValues(op, values, x),
                                                       SpmmValues(op, values, x))); });
  EXPECT_TRUE(rv.ok()) << rv.max_abs_error;
  auto rx = CheckGradient(x, [&] { return Sum(Mul(SpmmValues(op, values, x),
                                                  SpmmValues(op, values, x))); });
  EXPECT_TRUE(rx.ok()) << rx.max_abs_error;
}

TEST(SpmmPatternTest, ExternalValuesOverridePattern) {
  CsrMatrix a = SmallMatrix();
  std::vector<float> ones(static_cast<size_t>(a.nnz()), 1.0f);
  Tensor x = Tensor::FromVector(Shape(3, 1), {1, 1, 1});
  std::vector<float> y(3);
  SpmmPattern(a, ones.data(), x.data().data(), 1, y.data());
  // With unit values, each row sums its neighbour count.
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);
}

TEST(SpmmOpTest, RectangularOperator) {
  CsrMatrix a = CsrMatrix::FromCoo(2, 4, {{0, 3, 1.0f}, {1, 0, 2.0f}});
  auto op = MakeOperator(a);
  Tensor x = Tensor::FromVector(Shape(4, 1), {1, 2, 3, 4});
  Tensor y = Spmm(op, x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_FLOAT_EQ(y.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 2.0f);
}

// ---------------------------------------------------------------------------
// Receptive-field frontier utilities (pruned serving).
// ---------------------------------------------------------------------------

TEST(FrontierTest, ExpandFrontierIsSortedDedupedInNeighbourhood) {
  // Row r's stored columns are the in-neighbourhood the next SpMM reads.
  CsrMatrix m = CsrMatrix::FromCoo(
      5, 5, {{0, 1, 1.0f}, {0, 3, 1.0f}, {1, 0, 1.0f}, {3, 3, 1.0f},
             {3, 1, 1.0f}, {4, 2, 1.0f}});
  FrontierWorkspace ws;
  EXPECT_EQ(ExpandFrontier(m, {0}, false, &ws), (std::vector<int64_t>{1, 3}));
  // Overlapping neighbourhoods dedupe; output is sorted.
  EXPECT_EQ(ExpandFrontier(m, {0, 3}, false, &ws), (std::vector<int64_t>{1, 3}));
  // include_rows unions the seed rows (the closed neighbourhood).
  EXPECT_EQ(ExpandFrontier(m, {0, 4}, true, &ws),
            (std::vector<int64_t>{0, 1, 2, 3, 4}));
  // A row with no stored entries (node 2) has an empty open frontier.
  EXPECT_TRUE(ExpandFrontier(m, {2}, false, &ws).empty());
  EXPECT_EQ(RowsNnz(m, {0, 3, 2}), 4);
}

TEST(FrontierTest, WorkspaceEpochsSurviveReuse) {
  CsrMatrix m = CsrMatrix::FromCoo(3, 3, {{0, 1, 1.0f}, {1, 2, 1.0f}});
  FrontierWorkspace ws;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ExpandFrontier(m, {0, 1}, false, &ws),
              (std::vector<int64_t>{1, 2}));
  }
}

TEST(FrontierTest, SortedUnionAndPositions) {
  EXPECT_EQ(SortedUnion({1, 4, 9}, {2, 4, 10}),
            (std::vector<int64_t>{1, 2, 4, 9, 10}));
  EXPECT_EQ(SortedUnion({}, {3, 5}), (std::vector<int64_t>{3, 5}));
  EXPECT_EQ(SortedPositions({2, 9}, {1, 2, 4, 9, 10}),
            (std::vector<int64_t>{1, 3}));
}

TEST(InducedRowsTest, SliceKeepsValuesAndOrderAndRemapsColumns) {
  CsrMatrix m = SmallMatrix();  // [[0,2,0],[1,0,3],[0,0,4]]
  // Global columns (no remap): row i of the slice is row rows[i] of m.
  CsrMatrix sliced = m.InducedRows({1, 2}, nullptr, 0);
  EXPECT_EQ(sliced.rows(), 2);
  EXPECT_EQ(sliced.cols(), 3);
  auto dense = sliced.ToDense();
  const std::vector<float> expected = {1, 0, 3, 0, 0, 4};
  ASSERT_EQ(dense.size(), expected.size());
  for (size_t i = 0; i < dense.size(); ++i) EXPECT_FLOAT_EQ(dense[i], expected[i]);

  // Remapped columns: frontier {0, 2} -> local positions {0, 1}. Entry
  // order within a row is preserved (ascending original column), which is
  // what keeps per-row SpMM accumulation bitwise identical.
  std::vector<int64_t> remap = {0, -1, 1};
  CsrMatrix local = m.InducedRows({1, 2}, remap.data(), 2);
  EXPECT_EQ(local.cols(), 2);
  auto local_dense = local.ToDense();
  const std::vector<float> local_expected = {1, 3, 0, 4};
  ASSERT_EQ(local_dense.size(), local_expected.size());
  for (size_t i = 0; i < local_dense.size(); ++i) {
    EXPECT_FLOAT_EQ(local_dense[i], local_expected[i]);
  }
}

TEST(InducedRowsTest, SpmmOnSliceMatchesFullRows) {
  // Bitwise contract at the kernel level: SpMM over an induced slice equals
  // the same rows of the full SpMM, exactly.
  CsrMatrix m = CsrMatrix::FromCoo(
      6, 6, {{0, 1, 0.3f}, {0, 4, -1.2f}, {1, 0, 2.0f}, {2, 2, 0.7f},
             {3, 5, 1.1f}, {3, 0, -0.4f}, {5, 3, 0.9f}});
  const int64_t f = 5;
  std::vector<float> x(static_cast<size_t>(6 * f));
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.1f * static_cast<float>(i) - 1.3f;
  std::vector<float> full(static_cast<size_t>(6 * f));
  SpmmRaw(m, x.data(), f, full.data());

  const std::vector<int64_t> rows = {0, 3, 5};
  FrontierWorkspace ws;
  std::vector<int64_t> frontier = ExpandFrontier(m, rows, false, &ws);
  ws.EnsureSize(6);
  for (size_t j = 0; j < frontier.size(); ++j) ws.pos[frontier[j]] = j;
  CsrMatrix sliced =
      m.InducedRows(rows, ws.pos.data(), static_cast<int64_t>(frontier.size()));
  // Gather the frontier's feature rows into local order.
  std::vector<float> x_local(frontier.size() * static_cast<size_t>(f));
  for (size_t j = 0; j < frontier.size(); ++j) {
    std::copy_n(x.data() + frontier[j] * f, f, x_local.data() + j * f);
  }
  std::vector<float> pruned(rows.size() * static_cast<size_t>(f));
  SpmmRaw(sliced, x_local.data(), f, pruned.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int64_t c = 0; c < f; ++c) {
      EXPECT_EQ(pruned[i * f + c], full[rows[i] * f + c])
          << "row " << rows[i] << " col " << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Locality reordering (sparse/reorder.h).
// ---------------------------------------------------------------------------

/// A small irregular graph with a hub (node 1), a pendant chain, and an
/// isolated node (5) — exercises degree ties, BFS restarts, and empty rows.
CsrMatrix ReorderFixture() {
  return CsrMatrix::FromCoo(
      6, 6, {{0, 1, 0.5f}, {1, 0, 0.5f}, {1, 2, -1.0f}, {1, 4, 2.0f},
             {2, 1, -1.0f}, {2, 3, 0.25f}, {3, 2, 0.25f}, {4, 1, 2.0f}});
}

void ExpectPermutation(const std::vector<int64_t>& order, int64_t n) {
  ASSERT_EQ(static_cast<int64_t>(order.size()), n);
  std::vector<bool> seen(static_cast<size_t>(n), false);
  for (int64_t p : order) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, n);
    EXPECT_FALSE(seen[static_cast<size_t>(p)]) << "duplicate id " << p;
    seen[static_cast<size_t>(p)] = true;
  }
}

TEST(ReorderTest, DegreeSortOrderIsDescendingAndStable) {
  CsrMatrix m = ReorderFixture();
  std::vector<int64_t> order = DegreeSortOrder(m);
  ExpectPermutation(order, 6);
  for (size_t p = 0; p + 1 < order.size(); ++p) {
    const int64_t a = m.RowNnz(order[p]), b = m.RowNnz(order[p + 1]);
    EXPECT_GE(a, b);
    // Stable ties: equal degrees keep ascending old ids.
    if (a == b) {
      EXPECT_LT(order[p], order[p + 1]);
    }
  }
  EXPECT_EQ(order[0], 1);  // the hub (degree 3) leads
}

TEST(ReorderTest, RcmOrderCoversEveryComponent) {
  CsrMatrix m = ReorderFixture();
  std::vector<int64_t> order = RcmOrder(m);
  ExpectPermutation(order, 6);
  // RCM on one path graph: the classic bandwidth result is that neighbours
  // land at adjacent new ids. Check the max |new(u) - new(v)| over edges
  // of the connected chain 0-1-2-3 plus 1-4 stays small (≤ 2 here).
  std::vector<int64_t> new_of_old(6);
  for (size_t p = 0; p < order.size(); ++p) new_of_old[static_cast<size_t>(order[p])] = static_cast<int64_t>(p);
  const auto& row_ptr = m.row_ptr();
  const auto& cols = m.col_idx();
  int64_t bandwidth = 0;
  for (int64_t r = 0; r < 6; ++r) {
    for (int64_t k = row_ptr[static_cast<size_t>(r)]; k < row_ptr[static_cast<size_t>(r + 1)]; ++k) {
      bandwidth = std::max(bandwidth,
                           std::abs(new_of_old[static_cast<size_t>(r)] -
                                    new_of_old[static_cast<size_t>(cols[static_cast<size_t>(k)])]));
    }
  }
  EXPECT_LE(bandwidth, 2);
}

TEST(PermuteSquareTest, RowsRelocateWithColumnsRemappedInOriginalOrder) {
  CsrMatrix m = ReorderFixture();
  const std::vector<int64_t> new_to_old = {3, 1, 5, 0, 4, 2};
  std::vector<int64_t> new_of_old(6);
  for (size_t p = 0; p < new_to_old.size(); ++p) {
    new_of_old[static_cast<size_t>(new_to_old[p])] = static_cast<int64_t>(p);
  }
  CsrMatrix pm = PermuteSquare(m, new_to_old);
  ASSERT_EQ(pm.rows(), 6);
  ASSERT_EQ(pm.nnz(), m.nnz());
  for (int64_t p = 0; p < 6; ++p) {
    const int64_t old_row = new_to_old[static_cast<size_t>(p)];
    ASSERT_EQ(pm.RowNnz(p), m.RowNnz(old_row));
    const int64_t base_new = pm.row_ptr()[static_cast<size_t>(p)];
    const int64_t base_old = m.row_ptr()[static_cast<size_t>(old_row)];
    for (int64_t k = 0; k < pm.RowNnz(p); ++k) {
      // Entry k keeps its position (original order, NOT re-sorted) and its
      // value; only the column id is rewritten old→new.
      EXPECT_EQ(pm.col_idx()[static_cast<size_t>(base_new + k)],
                new_of_old[static_cast<size_t>(
                    m.col_idx()[static_cast<size_t>(base_old + k)])]);
      EXPECT_EQ(pm.values()[static_cast<size_t>(base_new + k)],
                m.values()[static_cast<size_t>(base_old + k)]);
    }
  }
}

TEST(PermuteSquareTest, SpmmThroughPermutationIsBitwiseInvisible) {
  // The serving contract end-to-end at the kernel level: permute operator
  // and features, SpMM, un-permute the output — bitwise equal to SpMM on
  // the original. Holds for any valid order because each row's accumulation
  // order is preserved.
  CsrMatrix m = ReorderFixture();
  const int64_t f = 7;
  std::vector<float> x(static_cast<size_t>(6 * f));
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.37f * static_cast<float>(i) - 2.1f;
  std::vector<float> y_ref(x.size());
  SpmmRaw(m, x.data(), f, y_ref.data());

  for (const std::vector<int64_t>& order :
       {DegreeSortOrder(m), RcmOrder(m), std::vector<int64_t>{5, 4, 3, 2, 1, 0}}) {
    CsrMatrix pm = PermuteSquare(m, order);
    std::vector<float> x_perm(x.size());
    for (size_t p = 0; p < order.size(); ++p) {
      std::copy_n(x.data() + order[p] * f, f, x_perm.data() + p * f);
    }
    std::vector<float> y_perm(x.size());
    SpmmRaw(pm, x_perm.data(), f, y_perm.data());
    for (size_t p = 0; p < order.size(); ++p) {
      for (int64_t c = 0; c < f; ++c) {
        EXPECT_EQ(y_perm[p * f + static_cast<size_t>(c)],
                  y_ref[static_cast<size_t>(order[p] * f) + static_cast<size_t>(c)]);
      }
    }
  }
}

}  // namespace
}  // namespace mixq
