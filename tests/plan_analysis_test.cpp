// Copyright 2026 MixQ-GNN Authors
// Tests for the value-range prover (engine/plan_analysis.h).
//
// The structural verifier's crafted-bundle suite proves bad *programs* are
// rejected; this suite proves bad *values* are: plans whose dataflow, shapes
// and quantizer chains are all structurally valid but whose frozen constants
// put an integer accumulator within reach of overflow. The boundary tests
// sit exactly on the int32 edge (K·127² just under / just over INT32_MAX),
// the pairing tests drive the symbolic SpMM certificate against hand-built
// graph bounds (including the value-range refinement), and an all-schemes
// sweep proves every real lowering in the registry analyzes clean on both
// backbones — with the prover's per-step VNNI verdicts agreeing with the
// flags kernel dispatch consumes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "core/experiment.h"
#include "engine/execution_plan.h"
#include "engine/model_bundle.h"
#include "engine/plan_analysis.h"
#include "sparse/csr.h"
#include "sparse/spmm.h"
#include "tensor/gemm.h"

namespace mixq {
namespace {

using engine::AnalyzePlanRanges;
using engine::BundleCheck;
using engine::BundleKind;
using engine::BundleManifest;
using engine::BundleSection;
using engine::CheckGraphAgainstCertificate;
using engine::CheckReport;
using engine::CompiledModelPtr;
using engine::CompileModel;
using engine::ComputeGraphRangeBounds;
using engine::ExecutionPlan;
using engine::FormatCheckReportJson;
using engine::GraphRangeBounds;
using engine::InspectBundle;
using engine::LoadBundle;
using engine::MaxColumnAbsSum;
using engine::PairIntermediatePeak;
using engine::PlanRangeCertificate;
using engine::SaveBundle;
using engine::SaveGraph;
using engine::SpmmRangeCert;
using engine::VerifyBundleFile;
using engine::VnniAccumulationSafe;

// K·127² for K = 133144 is 2,147,479,576 <= INT32_MAX = 2,147,483,647;
// K = 133145 lands at 2,147,495,705, the first depth past the edge.
constexpr int64_t kSafeDepth = 133144;
constexpr int64_t kUnsafeDepth = 133145;

// ---- shared per-step arithmetic --------------------------------------------

TEST(PlanAnalysisTest, MaxColumnAbsSumScansColumns) {
  // Row-major [2, 3]: columns sum |1|+|-4|, |-2|+|5|, |3|+|-6|.
  const int8_t w[] = {1, -2, 3, -4, 5, -6};
  EXPECT_EQ(MaxColumnAbsSum(w, 2, 3), 9);
  EXPECT_EQ(MaxColumnAbsSum(w, 2, 1), 3);  // stride 1: |1| + |-2|
  EXPECT_EQ(MaxColumnAbsSum(w, 0, 3), 0);  // empty matrix
}

TEST(PlanAnalysisTest, PairIntermediatePeakBoundaries) {
  // Full-scale 8-bit codes keep the vpmaddwd intermediate inside int16...
  EXPECT_EQ(PairIntermediatePeak(127, 127), 32258);
  EXPECT_LE(PairIntermediatePeak(127, 127),
            static_cast<int64_t>(std::numeric_limits<int16_t>::max()));
  // ...and 9-bit-scale codes would not — the contract the prover enforces.
  EXPECT_EQ(PairIntermediatePeak(181, 181), 65522);
  EXPECT_GT(PairIntermediatePeak(181, 181),
            static_cast<int64_t>(std::numeric_limits<int16_t>::max()));
}

TEST(PlanAnalysisTest, VnniAccumulationSafeBoundary) {
  // (127 + 128) · col_sum <= INT32_MAX  <=>  col_sum <= 8421504.
  EXPECT_TRUE(VnniAccumulationSafe(127, 8421504));
  EXPECT_FALSE(VnniAccumulationSafe(127, 8421505));
}

TEST(PlanAnalysisTest, VnniCertificateNeverWeakerThanCoarsePredicate) {
  // Int8VnniDepthOk assumes full-scale codes; wherever it says yes, the
  // certificate with full-scale col_sum = k·127 must agree — this is the
  // invariant behind the debug assert in GemmInt8Requant's dispatch.
  for (int64_t k : {2, 64, 1024, 66076, 66077, 133144}) {
    if (Int8VnniDepthOk(k)) {
      EXPECT_TRUE(VnniAccumulationSafe(127, k * 127)) << "k=" << k;
    }
  }
}

// ---- hand-crafted bundle writer --------------------------------------------
// Mirrors the wire format of engine/model_bundle.cc (DESIGN.md §5) so tests
// can express value-level pathologies the real lowering would never emit.

QuantParams Sym8(float scale) {
  QuantParams p;
  p.scale = scale;
  p.zero_point = 0;
  p.bits = 8;
  p.symmetric = true;
  return p;
}

struct SpecComponent {
  bool identity = true;
  QuantParams params;
};

struct SpecLinear {
  int64_t in = 0, out = 0, out_padded = 0;
  QuantParams weight_params;
  std::vector<float> weight_fq;
  std::vector<float> bias;
  std::vector<int8_t> weight_q8;
  std::vector<int16_t> weight_packed;
};

struct SpecStep {
  uint8_t op = 0;  ///< ExecutionPlan::Op numeric value
  int32_t src = 0, src2 = 0, dst = 0;
  int32_t linear = -1, adj = -1;
  int64_t cols = 0;
  SpecComponent quant;
};

struct SpecIntStep {
  uint8_t op = 0;  ///< ExecutionPlan::IntOp numeric value
  int32_t src = 0, src2 = 0, dst = 0;
  int32_t linear = -1, adj = -1;
  int64_t cols = 0;
  QuantParams src_params, src2_params, out_params;
  std::vector<double> bias_over;
};

struct PlanSpec {
  int64_t in_features = 4, out_dim = 3;
  int32_t num_buffers = 2, final_buffer = 0;
  std::vector<SpecLinear> linears;
  std::vector<SpecComponent> adj_quants;
  std::vector<SpecStep> steps;
  bool has_int8 = false;
  int32_t int_final_buffer = 0;
  QuantParams int_final_params;
  std::vector<SpecIntStep> int_steps;
};

void PutParams(ByteWriter* w, const QuantParams& p) {
  w->PutF32(p.scale);
  w->PutI32(p.zero_point);
  w->PutI32(p.bits);
  w->PutU8(p.symmetric ? 1 : 0);
}

void PutComponent(ByteWriter* w, const SpecComponent& c) {
  w->PutU8(c.identity ? 1 : 0);
  PutParams(w, c.params);
}

void EncodePlan(const PlanSpec& s, ByteWriter* w) {
  w->PutI64(s.in_features);
  w->PutI64(s.out_dim);
  w->PutI32(s.num_buffers);
  w->PutI32(s.final_buffer);
  w->PutI64(static_cast<int64_t>(s.linears.size()));
  for (const SpecLinear& lin : s.linears) {
    w->PutI64(lin.in);
    w->PutI64(lin.out);
    w->PutI64(lin.out_padded);
    PutParams(w, lin.weight_params);
    w->PutPodVector(lin.weight_fq);
    w->PutPodVector(lin.bias);
    w->PutPodVector(lin.weight_q8);
    w->PutPodVector(lin.weight_packed);
  }
  w->PutI64(static_cast<int64_t>(s.adj_quants.size()));
  for (const SpecComponent& c : s.adj_quants) PutComponent(w, c);
  w->PutI64(static_cast<int64_t>(s.steps.size()));
  for (const SpecStep& st : s.steps) {
    w->PutU8(st.op);
    w->PutI32(st.src);
    w->PutI32(st.src2);
    w->PutI32(st.dst);
    w->PutI32(st.linear);
    w->PutI32(st.adj);
    w->PutI64(st.cols);
    PutComponent(w, st.quant);
  }
}

void EncodeInt8(const PlanSpec& s, ByteWriter* w) {
  w->PutI32(s.int_final_buffer);
  PutParams(w, s.int_final_params);
  w->PutI64(static_cast<int64_t>(s.int_steps.size()));
  for (const SpecIntStep& st : s.int_steps) {
    w->PutU8(st.op);
    w->PutI32(st.src);
    w->PutI32(st.src2);
    w->PutI32(st.dst);
    w->PutI32(st.linear);
    w->PutI32(st.adj);
    w->PutI64(st.cols);
    PutParams(w, st.src_params);
    PutParams(w, st.src2_params);
    PutParams(w, st.out_params);
    w->PutPodVector(st.bias_over);
  }
}

void AppendSection(ByteWriter* file, const char* tag, const ByteWriter& payload) {
  file->PutBytes(tag, 4);
  file->PutU64(payload.size());
  file->PutU32(Crc32(payload.buffer().data(), payload.size()));
  file->PutBytes(payload.buffer().data(), payload.size());
}

std::vector<uint8_t> EncodeBundle(const PlanSpec& s) {
  ByteWriter file;
  file.PutBytes("MIXQBNDL", 8);
  file.PutU16(engine::kBundleFormatMajor);
  file.PutU16(engine::kBundleFormatMinor);
  file.PutU32(static_cast<uint32_t>(BundleKind::kModel));

  ByteWriter info;
  info.PutU8(0);  // gcn
  info.PutString("crafted");
  info.PutF64(8.0);             // avg_bits
  info.PutI64(0);               // param_count
  info.PutI64(s.in_features);
  info.PutI64(s.out_dim);
  info.PutU8(s.has_int8 ? 1 : 0);
  info.PutU32(0);  // bit assignment entries
  AppendSection(&file, "INFO", info);

  ByteWriter plan;
  EncodePlan(s, &plan);
  AppendSection(&file, "PLAN", plan);

  if (s.has_int8) {
    ByteWriter int8;
    EncodeInt8(s, &int8);
    AppendSection(&file, "IPLN", int8);
  }
  return file.buffer();
}

/// Unique path under the test temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(testing::TempDir() + "mixq_analysis_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Result<CompiledModelPtr> LoadModelSpec(const PlanSpec& s,
                                       const std::string& name) {
  TempFile file(name);
  EXPECT_TRUE(WriteFileAtomic(file.path(), EncodeBundle(s)).ok());
  return LoadBundle(file.path());
}

Status LoadSpec(const PlanSpec& s, const std::string& name) {
  return LoadModelSpec(s, name).status();
}

void ExpectRejected(const PlanSpec& s, const std::string& name,
                    const std::string& message_substr) {
  Status status = LoadSpec(s, name);
  ASSERT_FALSE(status.ok()) << name << ": crafted-bad bundle loaded";
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  EXPECT_NE(status.message().find(message_substr), std::string::npos)
      << name << ": expected '" << message_substr << "' in: "
      << status.ToString();
}

/// One GCN-shaped layer with a consistent integer program — the same
/// baseline the structural-verifier suite crafts: quantize(input)->b0,
/// matmul(b0)->b1, spmm(b1)->b0 plus quantize_input / gemm_requant /
/// spmm_requant over the same tables.
PlanSpec BaselineInt8() {
  PlanSpec s;
  s.in_features = 4;
  s.out_dim = 3;
  s.num_buffers = 2;
  s.final_buffer = 0;

  SpecLinear lin;
  lin.in = 4;
  lin.out = 3;
  lin.out_padded = 3;
  lin.weight_params = Sym8(0.1f);
  lin.weight_fq.assign(static_cast<size_t>(lin.in * lin.out_padded), 0.25f);
  lin.weight_q8.assign(static_cast<size_t>(lin.in * lin.out_padded), 3);
  lin.weight_packed.resize(
      static_cast<size_t>(PackedPairSize(lin.in, lin.out_padded)));
  PackInt8PairB(lin.weight_q8.data(), lin.in, lin.out_padded,
                lin.weight_packed.data());
  s.linears.push_back(lin);

  s.adj_quants.push_back({false, Sym8(0.02f)});

  SpecStep quantize;
  quantize.op = 0;  // kQuantize
  quantize.src = ExecutionPlan::kInput;
  quantize.dst = 0;
  quantize.cols = 4;
  quantize.quant = {false, Sym8(0.05f)};
  s.steps.push_back(quantize);

  SpecStep matmul;
  matmul.op = 1;  // kMatMul
  matmul.src = 0;
  matmul.dst = 1;
  matmul.linear = 0;
  matmul.cols = 3;
  s.steps.push_back(matmul);

  SpecStep spmm;
  spmm.op = 2;  // kSpmm
  spmm.src = 1;
  spmm.dst = 0;
  spmm.adj = 0;
  spmm.cols = 3;
  s.steps.push_back(spmm);

  s.has_int8 = true;
  const QuantParams p_in = Sym8(0.05f);
  const QuantParams p_gemm = Sym8(0.08f);
  const QuantParams p_spmm = Sym8(0.09f);

  SpecIntStep iquant;
  iquant.op = 0;  // kQuantizeInput
  iquant.src = ExecutionPlan::kInput;
  iquant.dst = 0;
  iquant.cols = 4;
  iquant.out_params = p_in;
  s.int_steps.push_back(iquant);

  SpecIntStep igemm;
  igemm.op = 1;  // kGemmRequant
  igemm.src = 0;
  igemm.dst = 1;
  igemm.linear = 0;
  igemm.cols = 3;
  igemm.src_params = p_in;
  igemm.out_params = p_gemm;
  s.int_steps.push_back(igemm);

  SpecIntStep ispmm;
  ispmm.op = 2;  // kSpmmRequant
  ispmm.src = 1;
  ispmm.dst = 0;
  ispmm.adj = 0;
  ispmm.cols = 3;
  ispmm.src_params = p_gemm;
  ispmm.out_params = p_spmm;
  s.int_steps.push_back(ispmm);

  s.int_final_buffer = 0;
  s.int_final_params = p_spmm;
  return s;
}

/// A structurally pristine deep GEMM: quantize(input, K cols)->b0,
/// matmul(b0)->b1, with every weight code at full scale (+127) so the int32
/// accumulator peak is exactly K·127². No SpMM — the accumulator edge is
/// all this plan exists to sit on.
PlanSpec DeepGemmSpec(int64_t depth) {
  PlanSpec s;
  s.in_features = depth;
  s.out_dim = 3;
  s.num_buffers = 2;
  s.final_buffer = 1;

  SpecLinear lin;
  lin.in = depth;
  lin.out = 3;
  lin.out_padded = 3;
  lin.weight_params = Sym8(0.1f);
  lin.weight_fq.assign(static_cast<size_t>(lin.in * lin.out_padded), 12.7f);
  lin.weight_q8.assign(static_cast<size_t>(lin.in * lin.out_padded), 127);
  lin.weight_packed.resize(
      static_cast<size_t>(PackedPairSize(lin.in, lin.out_padded)));
  PackInt8PairB(lin.weight_q8.data(), lin.in, lin.out_padded,
                lin.weight_packed.data());
  s.linears.push_back(lin);

  SpecStep quantize;
  quantize.op = 0;  // kQuantize
  quantize.src = ExecutionPlan::kInput;
  quantize.dst = 0;
  quantize.cols = depth;
  quantize.quant = {false, Sym8(0.05f)};
  s.steps.push_back(quantize);

  SpecStep matmul;
  matmul.op = 1;  // kMatMul
  matmul.src = 0;
  matmul.dst = 1;
  matmul.linear = 0;
  matmul.cols = 3;
  s.steps.push_back(matmul);

  s.has_int8 = true;
  const QuantParams p_in = Sym8(0.05f);
  const QuantParams p_gemm = Sym8(0.08f);

  SpecIntStep iquant;
  iquant.op = 0;  // kQuantizeInput
  iquant.src = ExecutionPlan::kInput;
  iquant.dst = 0;
  iquant.cols = depth;
  iquant.out_params = p_in;
  s.int_steps.push_back(iquant);

  SpecIntStep igemm;
  igemm.op = 1;  // kGemmRequant
  igemm.src = 0;
  igemm.dst = 1;
  igemm.linear = 0;
  igemm.cols = 3;
  igemm.src_params = p_in;
  igemm.out_params = p_gemm;
  s.int_steps.push_back(igemm);

  s.int_final_buffer = 1;
  s.int_final_params = p_gemm;
  return s;
}

// ---- crafted bundles: the int32 accumulator edge ---------------------------

TEST(PlanAnalysisTest, CraftedBaselineLoadsWithCertificate) {
  Result<CompiledModelPtr> model = LoadModelSpec(BaselineInt8(), "base.mqb");
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const PlanRangeCertificate* cert =
      model.ValueOrDie()->range_certificate();
  ASSERT_NE(cert, nullptr);
  ASSERT_EQ(cert->gemms.size(), 1u);
  ASSERT_EQ(cert->spmms.size(), 1u);

  // GEMM: codes |a| <= 127 on the input grid, |w|-column sum = 4·3 = 12.
  EXPECT_EQ(cert->gemms[0].step, 1u);
  EXPECT_EQ(cert->gemms[0].acc_peak, 127 * 12);
  EXPECT_EQ(cert->gemms[0].pair_peak, 32258);  // grid-level: 2·127·127
  EXPECT_TRUE(cert->gemms[0].vnni_safe);

  // SpMM: full-scale 8-bit codes on both sides bound the depth budget at
  // floor(INT32_MAX / 127²) = 133144 stored entries per row.
  EXPECT_EQ(cert->spmms[0].step, 2u);
  EXPECT_EQ(cert->spmms[0].src_code_max, 127);
  EXPECT_EQ(cert->spmms[0].adj_code_max, 127);
  EXPECT_FLOAT_EQ(cert->spmms[0].adj_scale, 0.02f);
  EXPECT_EQ(cert->max_spmm_nnz, kSafeDepth);
}

TEST(PlanAnalysisTest, AcceptsGemmExactlyAtInt32Edge) {
  Result<CompiledModelPtr> model =
      LoadModelSpec(DeepGemmSpec(kSafeDepth), "edge_under.mqb");
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const PlanRangeCertificate* cert =
      model.ValueOrDie()->range_certificate();
  ASSERT_NE(cert, nullptr);
  ASSERT_EQ(cert->gemms.size(), 1u);
  EXPECT_EQ(cert->gemms[0].acc_peak, kSafeDepth * 127 * 127);
  EXPECT_LE(cert->gemms[0].acc_peak,
            static_cast<int64_t>(std::numeric_limits<int32_t>::max()));
  // This depth cannot run the unsigned-shift VNNI kernel; the certificate
  // must say so (dispatch falls to the vpmaddwd/scalar tiers).
  EXPECT_FALSE(cert->gemms[0].vnni_safe);
  // No int8 SpMM: any graph pairs with this plan.
  EXPECT_EQ(cert->max_spmm_nnz, std::numeric_limits<int64_t>::max());
}

TEST(PlanAnalysisTest, RejectsGemmJustOverInt32Edge) {
  Status status = LoadSpec(DeepGemmSpec(kUnsafeDepth), "edge_over.mqb");
  ASSERT_FALSE(status.ok()) << "overflowable plan loaded";
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("int32 accumulator can overflow"),
            std::string::npos)
      << status.ToString();
  // The diagnostic is step-indexed with the structural verifier's grammar.
  EXPECT_NE(status.message().find("int8 step 1 (GemmRequant)"),
            std::string::npos)
      << status.ToString();
}

TEST(PlanAnalysisTest, PairwiseEdgeCertificateAtMinimumDepth) {
  // K = 2 is the smallest depth the pairwise kernel folds: one vpmaddwd
  // intermediate per column, at full scale |a0·b0 + a1·b1| = 2·127² = 32258.
  PlanSpec s = DeepGemmSpec(2);
  s.linears[0].weight_q8 = {127, -127, 127, -127, 127, -127};
  PackInt8PairB(s.linears[0].weight_q8.data(), 2, 3,
                s.linears[0].weight_packed.data());
  Result<CompiledModelPtr> model = LoadModelSpec(s, "pair_edge.mqb");
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const PlanRangeCertificate* cert =
      model.ValueOrDie()->range_certificate();
  ASSERT_NE(cert, nullptr);
  ASSERT_EQ(cert->gemms.size(), 1u);
  EXPECT_EQ(cert->gemms[0].acc_peak, 127 * 254);
  EXPECT_EQ(cert->gemms[0].pair_peak, 32258);
  EXPECT_EQ(cert->gemms[0].vnni_peak, (127 + 128) * 254);
  EXPECT_TRUE(cert->gemms[0].vnni_safe);
}

// ---- crafted bundles: non-finite frozen constants --------------------------

TEST(PlanAnalysisTest, RejectsNonFiniteWeightTable) {
  PlanSpec s = BaselineInt8();
  s.linears[0].weight_fq[2] = std::numeric_limits<float>::quiet_NaN();
  ExpectRejected(s, "nan_weight.mqb", "weight [0, 2] is not finite");
}

TEST(PlanAnalysisTest, RejectsInfiniteWeightTable) {
  PlanSpec s = BaselineInt8();
  s.linears[0].weight_fq[7] = std::numeric_limits<float>::infinity();
  ExpectRejected(s, "inf_weight.mqb", "is not finite");
}

// ---- graph pairing: the symbolic certificate meets a concrete graph --------

PlanRangeCertificate FullScaleSpmmCert() {
  PlanRangeCertificate cert;
  SpmmRangeCert sc;
  sc.step = 2;
  sc.src_code_max = 127;
  sc.adj_code_max = 127;
  sc.adj_scale = 0.02f;
  sc.max_nnz = kSafeDepth;  // INT32_MAX / 127²
  cert.spmms.push_back(sc);
  cert.max_spmm_nnz = sc.max_nnz;
  return cert;
}

TEST(PlanAnalysisTest, PairingAcceptsGraphWithinBudget) {
  GraphRangeBounds bounds;
  bounds.max_row_nnz = kSafeDepth;  // exactly at the proven edge
  bounds.value_abs_max = 2.54f;     // full-scale adjacency values
  Status status = CheckGraphAgainstCertificate(FullScaleSpmmCert(), bounds);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(PlanAnalysisTest, PairingRejectsGraphBeyondBudgetStepIndexed) {
  GraphRangeBounds bounds;
  bounds.max_row_nnz = 200000;
  bounds.value_abs_max = 2.54f;  // values really reach the grid's clip point
  Status status = CheckGraphAgainstCertificate(FullScaleSpmmCert(), bounds);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("int8 step 2 (SpmmRequant)"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("serve fp32"), std::string::npos)
      << status.ToString();
}

TEST(PlanAnalysisTest, PairingValueRangeRefinementStretchesBudget) {
  // Same 200k-deep graph, but its adjacency values top out at 0.2 on a
  // 0.02-scale grid: codes provably stay <= 10, so the per-row budget is
  // floor(INT32_MAX / (10·127)) ≈ 1.69M entries and the pairing holds.
  GraphRangeBounds bounds;
  bounds.max_row_nnz = 200000;
  bounds.value_abs_max = 0.2f;
  Status status = CheckGraphAgainstCertificate(FullScaleSpmmCert(), bounds);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(PlanAnalysisTest, PairingRejectsNonFiniteAdjacency) {
  GraphRangeBounds bounds;
  bounds.max_row_nnz = 1;
  bounds.value_abs_max = 1.0f;
  bounds.values_finite = false;
  Status status = CheckGraphAgainstCertificate(FullScaleSpmmCert(), bounds);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("non-finite"), std::string::npos)
      << status.ToString();
}

TEST(PlanAnalysisTest, EmptyCertificatePairsWithAnyGraph) {
  // Fp32-only / SpMM-free plans carry the vacuous bound: no graph can
  // violate it.
  GraphRangeBounds bounds;
  bounds.max_row_nnz = int64_t{1} << 40;
  bounds.value_abs_max = 1e30f;
  Status status = CheckGraphAgainstCertificate(PlanRangeCertificate(), bounds);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(PlanAnalysisTest, ComputeGraphRangeBoundsScansCsr) {
  Result<CsrMatrix> m = CsrMatrix::FromParts(
      3, 3, {0, 2, 3, 3}, {0, 2, 1}, {1.0f, -5.5f, 2.0f});
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  GraphRangeBounds bounds = ComputeGraphRangeBounds(
      *MakeOperator(m.MoveValueOrDie()));
  EXPECT_EQ(bounds.max_row_nnz, 2);
  EXPECT_FLOAT_EQ(bounds.value_abs_max, 5.5f);
  EXPECT_TRUE(bounds.values_finite);

  Result<CsrMatrix> bad = CsrMatrix::FromParts(
      2, 2, {0, 1, 2}, {0, 1},
      {1.0f, std::numeric_limits<float>::quiet_NaN()});
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_FALSE(
      ComputeGraphRangeBounds(*MakeOperator(bad.MoveValueOrDie())).values_finite);
}

// ---- real models: every registry lowering proves clean ---------------------

NodeDataset AnalysisDataset(uint64_t seed = 7) {
  CitationConfig c;
  c.name = "analysis-tiny";
  c.num_nodes = 120;
  c.num_classes = 3;
  c.feature_dim = 16;
  c.avg_degree = 3.0;
  c.homophily = 0.8;
  c.train_per_class = 8;
  c.val_count = 20;
  c.test_count = 40;
  c.seed = seed;
  return GenerateCitation(c);
}

std::shared_ptr<ModelArtifact> TrainArtifact(const SchemeRef& scheme,
                                             NodeModelKind model) {
  NodeExperimentConfig cfg;
  cfg.model = model;
  cfg.hidden = 10;
  cfg.num_layers = 2;
  cfg.train.epochs = 6;
  cfg.train.lr = 0.05f;
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(AnalysisDataset(), cfg, scheme);
  spec.seed = 7;
  spec.keep_artifact = true;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  EXPECT_TRUE(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ValueOrDie().artifact;
}

TEST(PlanAnalysisTest, EveryRegistrySchemeProvesCleanOnBothBackbones) {
  struct Case {
    const char* label;
    SchemeRef ref;
  };
  const std::vector<Case> cases = {
      {"fp32", SchemeRef::Fp32()},
      {"qat8", SchemeRef::Qat(8)},
      {"qat4", SchemeRef::Qat(4)},
      {"dq8", SchemeRef::Dq(8)},
      {"a2q", SchemeRef::A2q()},
      {"mixq", SchemeRef::MixQ(0.1)},
      {"mixq-dq", SchemeRef::MixQDq(0.1)},
      {"fixed", SchemeRef::Fixed({{"gcn0/weight", 4}})},
      {"random", SchemeRef::Random()},
      {"random-int8", SchemeRef::RandomInt8()},
  };
  for (NodeModelKind backbone : {NodeModelKind::kGcn, NodeModelKind::kSage}) {
    for (const Case& c : cases) {
      SCOPED_TRACE(std::string(c.label) + "/" +
                   (backbone == NodeModelKind::kGcn ? "gcn" : "sage"));
      auto artifact = TrainArtifact(c.ref, backbone);
      Result<CompiledModelPtr> model = CompileModel(*artifact);
      // Schemes that only serve via pipeline replay (a2q) do not lower to
      // a plan; there is nothing for the prover to accept or reject.
      if (!model.ok() || model.ValueOrDie()->plan() == nullptr) continue;
      const CompiledModelPtr& m = model.ValueOrDie();

      Result<PlanRangeCertificate> cert = AnalyzePlanRanges(*m->plan());
      ASSERT_TRUE(cert.ok()) << cert.status().ToString();
      ASSERT_NE(m->range_certificate(), nullptr);

      // The prover's per-step VNNI verdicts must be the flags dispatch
      // consumes: FinalizeDerived computes them with the same arithmetic.
      const auto& int_steps = m->plan()->int_steps();
      for (const auto& gc : cert.ValueOrDie().gemms) {
        ASSERT_LT(gc.step, int_steps.size());
        EXPECT_EQ(int_steps[gc.step].vnni_safe, gc.vnni_safe)
            << "int8 step " << gc.step;
      }
    }
  }
}

// ---- VerifyBundleFile: the lint check chain --------------------------------

TEST(PlanAnalysisTest, LintChainEndsWithRangesForModelsAndValuesForGraphs) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8), NodeModelKind::kGcn);
  Result<CompiledModelPtr> model = CompileModel(*artifact);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  TempFile model_file("chain_model.mqb");
  ASSERT_TRUE(SaveBundle(*model.ValueOrDie(), model_file.path()).ok());
  std::vector<BundleCheck> checks = VerifyBundleFile(model_file.path());
  ASSERT_FALSE(checks.empty());
  for (const BundleCheck& c : checks) {
    EXPECT_TRUE(c.status.ok()) << c.section << ": " << c.status.ToString();
  }
  EXPECT_EQ(checks.back().section, "ranges");

  TempFile graph_file("chain_graph.mqb");
  ASSERT_TRUE(
      SaveGraph(artifact->features, artifact->op, graph_file.path()).ok());
  checks = VerifyBundleFile(graph_file.path());
  ASSERT_FALSE(checks.empty());
  for (const BundleCheck& c : checks) {
    EXPECT_TRUE(c.status.ok()) << c.section << ": " << c.status.ToString();
  }
  EXPECT_EQ(checks.back().section, "values");
}

TEST(PlanAnalysisTest, FormatCheckReportJsonEscapesAndFlagsClean) {
  CheckReport report;
  report.subject = "dir/\"quoted\"\n.mqb";
  report.checks.push_back({"header", Status::OK()});
  report.checks.push_back(
      {"plan", Status::InvalidArgument("bad\tstep")});
  const std::string json = FormatCheckReportJson(report);
  EXPECT_NE(json.find("\"subject\": \"dir/\\\"quoted\\\"\\n.mqb\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\": \"invalid_argument\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("bad\\tstep"), std::string::npos) << json;

  report.checks.pop_back();
  EXPECT_NE(FormatCheckReportJson(report).find("\"clean\": true"),
            std::string::npos);
}

// ---- fuzz regression: lint verdict == load verdict -------------------------

/// Recomputes and rewrites the stored checksum of `section` so a payload
/// mutation survives the CRC gate.
void RepairCrc(std::vector<uint8_t>* bytes, const BundleSection& section) {
  const uint32_t crc =
      Crc32(bytes->data() + section.offset, static_cast<size_t>(section.size));
  for (int i = 0; i < 4; ++i) {
    (*bytes)[static_cast<size_t>(section.offset) - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
}

TEST(PlanAnalysisTest, LintVerdictMatchesLoadOnCrcRepairedMutations) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8), NodeModelKind::kGcn);
  Result<CompiledModelPtr> model = CompileModel(*artifact);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  TempFile file("lint_fuzz.mqb");
  ASSERT_TRUE(SaveBundle(*model.ValueOrDie(), file.path()).ok());

  std::vector<uint8_t> pristine;
  ASSERT_TRUE(ReadFileBytes(file.path(), &pristine).ok());
  BundleManifest manifest = InspectBundle(file.path()).MoveValueOrDie();

  int clean_count = 0, dirty_count = 0;
  for (const BundleSection& section : manifest.sections) {
    if (section.tag != "PLAN" && section.tag != "IPLN") continue;
    for (int trial = 0; trial < 96; ++trial) {
      std::vector<uint8_t> mutated = pristine;
      const size_t pos = static_cast<size_t>(section.offset) +
                         (static_cast<size_t>(trial) * 2654435761u) %
                             static_cast<size_t>(section.size);
      mutated[pos] ^= static_cast<uint8_t>(1u << (trial % 8));
      RepairCrc(&mutated, section);

      TempFile mutated_file("lint_fuzz_mut.mqb");
      ASSERT_TRUE(WriteFileAtomic(mutated_file.path(), mutated).ok());

      std::vector<BundleCheck> checks = VerifyBundleFile(mutated_file.path());
      ASSERT_FALSE(checks.empty());
      // The chain stops at the first failure: everything before the last
      // verdict must be OK, whatever the mutation did.
      for (size_t i = 0; i + 1 < checks.size(); ++i) {
        EXPECT_TRUE(checks[i].status.ok())
            << section.tag << " trial " << trial << ": " << checks[i].section;
      }
      const bool clean = checks.back().status.ok();
      (clean ? clean_count : dirty_count) += 1;

      // mixq_lint's verdict and the serving loader must agree byte-for-byte:
      // a bundle that lints clean loads, a bundle that doesn't is rejected.
      Status load = LoadBundle(mutated_file.path()).status();
      EXPECT_EQ(clean, load.ok())
          << section.tag << " trial " << trial << ": lint "
          << checks.back().status.ToString() << " vs load " << load.ToString();
    }
  }
  // The sweep must exercise both outcomes, else it is vacuous.
  EXPECT_GT(dirty_count, 0) << "no mutation was ever caught";
  EXPECT_GT(clean_count, 0) << "no mutation ever linted clean";
}

}  // namespace
}  // namespace mixq
