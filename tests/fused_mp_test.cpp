// Copyright 2026 MixQ-GNN Authors
// Theorem 1 verification: the fused integer message-passing path must equal
// the float fake-quantization reference. This is the C++ analogue of the
// paper's MixQ/test/test_graph_conv_module.py and test_graph_iso_module.py.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.h"
#include "quant/fused_mp.h"
#include "sparse/csr.h"

namespace mixq {
namespace {

CsrMatrix RandomSparse(int64_t n, int64_t m, double density, uint64_t seed,
                       float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      if (rng.Bernoulli(density)) entries.push_back({i, j, rng.Uniform(lo, hi)});
    }
  }
  if (entries.empty()) entries.push_back({0, 0, 1.0f});
  return CsrMatrix::FromCoo(n, m, std::move(entries));
}

Tensor RandomDense(int64_t r, int64_t c, uint64_t seed, float lo = -1.0f,
                   float hi = 1.0f) {
  Rng rng(seed);
  return Tensor::RandomUniform(Shape(r, c), &rng, lo, hi);
}

// Counts mismatches between fused and reference, allowing ±1 rounding ties.
void ExpectMatchesReference(const QuantizedDense& fused, const QuantizedDense& ref) {
  ASSERT_EQ(fused.q.size(), ref.q.size());
  int64_t off_by_one = 0;
  for (size_t i = 0; i < fused.q.size(); ++i) {
    const int32_t d = std::abs(fused.q[i] - ref.q[i]);
    ASSERT_LE(d, 1) << "index " << i << ": fused=" << fused.q[i]
                    << " ref=" << ref.q[i];
    off_by_one += d;
  }
  // Rounding ties must be rare (both paths use double accumulation).
  EXPECT_LE(off_by_one, static_cast<int64_t>(fused.q.size() / 50 + 2));
}

TEST(QuantizeDenseTest, RoundTripWithinBound) {
  Tensor x = RandomDense(6, 5, 1, -2.0f, 2.0f);
  QuantParams p = ParamsFromRange(-2.0f, 2.0f, 8, true);
  QuantizedDense q = QuantizeDense(x, p);
  auto back = q.Dequantize();
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back[i], x.data()[i], p.scale * 0.5f + 1e-6f);
  }
}

TEST(QuantizeCsrTest, ImplicitZerosQuantizeToZeroPoint) {
  CsrMatrix a = RandomSparse(5, 5, 0.4, 2);
  QuantParams p = ParamsFromRange(-1.0f, 1.0f, 8, true);
  // Q(0) must equal the zero point so missing entries are consistent.
  EXPECT_EQ(QuantizeValue(0.0f, p), p.zero_point);
  QuantizedSparse qa = QuantizeCsr(a, p);
  EXPECT_EQ(qa.q.size(), a.values().size());
}

// Parameterized Theorem-1 sweep: (a_bits, x_bits, symmetric_x).
class FusedSpmmTheoremTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(FusedSpmmTheoremTest, FusedEqualsReference) {
  const auto [a_bits, x_bits, x_symmetric] = GetParam();
  const int64_t n = 24, f = 12;
  CsrMatrix a = RandomSparse(n, n, 0.15, 3 + a_bits, -1.0f, 1.0f);
  Tensor x = RandomDense(n, f, 17 + x_bits, -2.0f, 2.0f);

  QuantParams pa = ParamsFromRange(-1.0f, 1.0f, a_bits, /*symmetric=*/true);
  QuantParams px = ParamsFromRange(-2.0f, 2.0f, x_bits, x_symmetric);
  QuantParams py = ParamsFromRange(-8.0f, 8.0f, 16, true);

  QuantizedSparse qa = QuantizeCsr(a, pa);
  QuantizedDense qx = QuantizeDense(x, px);
  QuantizedDense fused = FusedQuantizedSpmm(a, qa, qx, py);
  QuantizedDense ref = ReferenceQuantizedSpmm(a, qa, qx, py);
  ExpectMatchesReference(fused, ref);
}

INSTANTIATE_TEST_SUITE_P(
    BitWidthSweep, FusedSpmmTheoremTest,
    ::testing::Combine(::testing::Values(2, 4, 8), ::testing::Values(2, 4, 8),
                       ::testing::Bool()),
    [](const auto& info) {
      return "a" + std::to_string(std::get<0>(info.param)) + "_x" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_sym" : "_asym");
    });

TEST(FusedSpmmTest, AsymmetricAdjacencyNeedsTTerm) {
  // Za != 0 exercises the full C3 correction including the T matrix.
  const int64_t n = 16, f = 8;
  CsrMatrix a = RandomSparse(n, n, 0.2, 5, -0.3f, 1.0f);  // skewed weights
  Tensor x = RandomDense(n, f, 6);
  QuantParams pa = ParamsFromRange(-0.3f, 1.0f, 8, /*symmetric=*/false);
  ASSERT_NE(pa.zero_point, 0);
  QuantParams px = ParamsFromRange(-1.0f, 1.0f, 8, true);
  QuantParams py = ParamsFromRange(-4.0f, 4.0f, 16, true);
  QuantizedSparse qa = QuantizeCsr(a, pa);
  QuantizedDense qx = QuantizeDense(x, px);
  ExpectMatchesReference(FusedQuantizedSpmm(a, qa, qx, py),
                         ReferenceQuantizedSpmm(a, qa, qx, py));
}

TEST(FusedSpmmTest, IdentityOutputParamsKeepRawAggregates) {
  // The paper's multi-hop mode: S_y = 1, Z_y = 0 — outputs are plain rounded
  // aggregates, no information squashed by an output range.
  const int64_t n = 10, f = 4;
  CsrMatrix a = RandomSparse(n, n, 0.3, 7);
  Tensor x = RandomDense(n, f, 8);
  QuantParams pa = ParamsFromRange(-1.0f, 1.0f, 8, true);
  QuantParams px = ParamsFromRange(-1.0f, 1.0f, 8, true);
  QuantParams py;  // scale=1, zp=0
  py.bits = 32;
  py.symmetric = true;
  QuantizedSparse qa = QuantizeCsr(a, pa);
  QuantizedDense qx = QuantizeDense(x, px);
  QuantizedDense fused = FusedQuantizedSpmm(a, qa, qx, py);
  // Dequantized fused output approximates the true float A·X.
  std::vector<float> y_true(static_cast<size_t>(n * f));
  SpmmRaw(a, x.data().data(), f, y_true.data());
  auto y_q = fused.Dequantize();
  double max_err = 0.0;
  for (size_t i = 0; i < y_q.size(); ++i) {
    max_err = std::max(max_err, static_cast<double>(std::fabs(y_q[i] - y_true[i])));
  }
  EXPECT_LT(max_err, 0.6);  // int8 operand rounding noise only
}

TEST(FusedGemmTest, MatchesFloatReference) {
  const int64_t m = 12, k = 10, n = 6;
  Tensor x = RandomDense(m, k, 9, -1.5f, 1.5f);
  Tensor w = RandomDense(k, n, 10, -0.8f, 0.8f);
  QuantParams px = ParamsFromRange(-1.5f, 1.5f, 8, /*symmetric=*/false);
  QuantParams pw = ParamsFromRange(-0.8f, 0.8f, 8, true);
  QuantParams py = ParamsFromRange(-6.0f, 6.0f, 16, true);
  QuantizedDense qx = QuantizeDense(x, px);
  QuantizedDense qw = QuantizeDense(w, pw);
  QuantizedDense fused = FusedQuantizedGemm(qx, qw, py);
  // Float reference from the dequantized operands.
  auto xf = qx.Dequantize();
  auto wf = qw.Dequantize();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t l = 0; l < k; ++l) {
        acc += static_cast<double>(xf[static_cast<size_t>(i * k + l)]) *
               wf[static_cast<size_t>(l * n + j)];
      }
      const long expect = std::lround(acc / py.scale) + py.zero_point;
      EXPECT_NEAR(fused.q[static_cast<size_t>(i * n + j)], expect, 1);
    }
  }
}

TEST(FusedEndToEndTest, QuantizedGcnLayerMatchesFakeQuantFloat) {
  // The test the paper ships for GCN: one quantized GCN message pass
  // Qy(Â · (XΘ)) computed fully in integers vs the float fake-quant pipeline.
  NodeDataset ds = GenerateCitation([] {
    CitationConfig c;
    c.num_nodes = 60;
    c.num_classes = 3;
    c.feature_dim = 16;
    c.avg_degree = 2.0;
    c.train_per_class = 5;
    c.val_count = 10;
    c.test_count = 10;
    c.seed = 21;
    return c;
  }());
  const Graph& g = ds.graph;
  CsrMatrix ahat = GcnNormalize(g.Adjacency());
  Rng rng(3);
  Tensor theta = Tensor::GlorotUniform(16, 8, &rng, false);

  // Quantize X, Θ; integer GEMM for XΘ; integer SpMM for Â(XΘ).
  QuantParams px = ParamsFromRange(0.0f, 1.0f, 8, false);
  QuantParams pw = ParamsFromRange(-0.5f, 0.5f, 8, true);
  QuantParams pxw = ParamsFromRange(-2.0f, 2.0f, 8, true);
  QuantParams pa = ParamsFromRange(0.0f, 1.0f, 8, true);
  QuantParams py = ParamsFromRange(-4.0f, 4.0f, 16, true);

  QuantizedDense qx = QuantizeDense(g.features, px);
  QuantizedDense qw = QuantizeDense(theta, pw);
  QuantizedDense qxw = FusedQuantizedGemm(qx, qw, pxw);
  QuantizedSparse qa = QuantizeCsr(ahat, pa);
  QuantizedDense qy = FusedQuantizedSpmm(ahat, qa, qxw, py);

  // Float fake-quant reference of the same pipeline.
  auto xw_ref = ReferenceQuantizedSpmm(ahat, qa, qxw, py);
  ExpectMatchesReference(qy, xw_ref);
}

TEST(FusedEndToEndTest, QuantizedGinAggregationMatches) {
  // GIN aggregation uses the unweighted adjacency (w = 1): Theorem 1 with
  // A's values all 1 — the test_graph_iso_module analogue.
  Graph g;
  g.num_nodes = 30;
  Rng rng(11);
  for (int64_t i = 0; i < 30; ++i) {
    for (int64_t j = 0; j < 30; ++j) {
      if (i != j && rng.Bernoulli(0.15)) g.edges.push_back({i, j, 1.0f});
    }
  }
  CsrMatrix a = g.Adjacency();
  Tensor x = RandomDense(30, 8, 12);
  QuantParams pa = ParamsFromRange(0.0f, 1.0f, 4, true);
  QuantParams px = ParamsFromRange(-1.0f, 1.0f, 4, true);
  QuantParams py = ParamsFromRange(-8.0f, 8.0f, 16, true);
  QuantizedSparse qa = QuantizeCsr(a, pa);
  QuantizedDense qx = QuantizeDense(x, px);
  ExpectMatchesReference(FusedQuantizedSpmm(a, qa, qx, py),
                         ReferenceQuantizedSpmm(a, qa, qx, py));
}

}  // namespace
}  // namespace mixq
