// Copyright 2026 MixQ-GNN Authors
// End-to-end graph-classification integration tests (Tables 8-9 pipelines)
// on reduced datasets.
#include <gtest/gtest.h>

#include "core/pipelines.h"
#include "graph/csl.h"

namespace mixq {
namespace {

GraphDataset SmallTu(uint64_t seed) {
  TuConfig c;
  c.name = "small-tu";
  c.num_graphs = 60;
  c.avg_nodes = 15.0;
  c.num_classes = 2;
  c.base_degree = 2.0;
  c.degree_step = 1.0;
  c.seed = seed;
  return GenerateTu(c);
}

GraphExperimentConfig SmallGraphConfig() {
  GraphExperimentConfig cfg;
  cfg.hidden = 16;
  cfg.num_layers = 3;
  cfg.folds = 3;
  cfg.train.epochs = 40;
  cfg.train.lr = 0.01f;
  cfg.train.weight_decay = 0.0f;
  return cfg;
}

TEST(GraphIntegration, Fp32GinSeparatesDensityClasses) {
  GraphExperimentResult res =
      RunGraphExperiment(SmallTu(1), SmallGraphConfig(), SchemeSpec::Fp32());
  ASSERT_EQ(res.fold_accuracies.size(), 3u);
  EXPECT_GT(res.mean, 0.75) << "GIN failed to learn the planted density signal";
  EXPECT_DOUBLE_EQ(res.avg_bits, 32.0);
  EXPECT_GT(res.gbitops, 0.0);
  EXPECT_LE(res.min, res.max);
}

TEST(GraphIntegration, QatInt8StaysClose) {
  GraphExperimentResult fp32 =
      RunGraphExperiment(SmallTu(2), SmallGraphConfig(), SchemeSpec::Fp32());
  GraphExperimentResult int8 =
      RunGraphExperiment(SmallTu(2), SmallGraphConfig(), SchemeSpec::Qat(8));
  EXPECT_GT(int8.mean, fp32.mean - 0.15);
  EXPECT_LT(int8.gbitops, fp32.gbitops / 3.0);
}

TEST(GraphIntegration, DqAndA2qRun) {
  GraphExperimentConfig cfg = SmallGraphConfig();
  cfg.folds = 2;
  cfg.train.epochs = 25;
  GraphExperimentResult dq =
      RunGraphExperiment(SmallTu(3), cfg, SchemeSpec::Dq(4));
  EXPECT_GT(dq.mean, 0.4);
  GraphExperimentResult a2q =
      RunGraphExperiment(SmallTu(3), cfg, SchemeSpec::A2q());
  EXPECT_GT(a2q.mean, 0.4);
}

TEST(GraphIntegration, MixQSearchOnGraphs) {
  GraphExperimentConfig cfg = SmallGraphConfig();
  cfg.folds = 2;
  cfg.train.epochs = 30;
  SchemeSpec spec = SchemeSpec::MixQ(0.1, {4, 8});
  spec.search_epochs = 15;
  GraphExperimentResult res = RunGraphExperiment(SmallTu(4), cfg, spec);
  EXPECT_GT(res.mean, 0.5);
  EXPECT_LT(res.avg_bits, 32.0);
}

TEST(GraphIntegration, CslGcnBackboneFp32) {
  // Tiny CSL variant: 41-node graphs, 10 classes, Laplacian PE — FP32 GCN
  // with positional encodings must beat chance (0.1) clearly.
  GraphDataset csl = MakeCslDataset(/*pe_dim=*/20, /*seed=*/1);
  GraphExperimentConfig cfg;
  cfg.gcn_backbone = true;
  cfg.gcn_layers = 3;
  cfg.hidden = 24;
  cfg.folds = 3;
  cfg.train.epochs = 60;
  cfg.train.lr = 0.01f;
  cfg.train.weight_decay = 0.0f;
  GraphExperimentResult res = RunGraphExperiment(csl, cfg, SchemeSpec::Fp32());
  EXPECT_GT(res.mean, 0.3);
}

TEST(GraphIntegration, CslInt2Collapses) {
  // The paper's Table 9: QAT-INT2 collapses on CSL (24% vs 99% FP32) because
  // positional encodings need ~log2(41) bits. INT2 must do far worse than
  // FP32 here.
  GraphDataset csl = MakeCslDataset(/*pe_dim=*/20, /*seed=*/2);
  GraphExperimentConfig cfg;
  cfg.gcn_backbone = true;
  cfg.gcn_layers = 4;
  cfg.hidden = 32;
  cfg.folds = 2;
  cfg.train.epochs = 120;
  cfg.train.lr = 0.005f;
  cfg.train.weight_decay = 0.0f;
  GraphExperimentResult fp32 = RunGraphExperiment(csl, cfg, SchemeSpec::Fp32());
  GraphExperimentResult int2 = RunGraphExperiment(csl, cfg, SchemeSpec::Qat(2));
  EXPECT_LT(int2.mean, 0.2);  // chance-level collapse (paper: 24.4%)
  EXPECT_LT(int2.mean, fp32.mean - 0.2);
}

}  // namespace
}  // namespace mixq
