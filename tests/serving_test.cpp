// Copyright 2026 MixQ-GNN Authors
// Tests for the serving path: lowered-vs-reference logit parity across every
// built-in registry scheme, the all-integer executor, cross-graph requests,
// and the asynchronous request/response API — graph registry, Submit with
// micro-batching, deadlines, admission control, and result-cache
// invalidation on ReplaceModel/ReplaceGraph.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "engine/inference_engine.h"

namespace mixq {
namespace {

using engine::BatcherOptions;
using engine::CompileModel;
using engine::CompiledModelPtr;
using engine::InferenceEngine;
using engine::Precision;
using engine::PredictRequest;
using engine::PredictResponse;
using engine::PredictScratch;
using engine::ServingClock;

NodeDataset TinyCitation(uint64_t seed = 1) {
  CitationConfig c;
  c.name = "serving-tiny";
  c.num_nodes = 160;
  c.num_classes = 3;
  c.feature_dim = 20;
  c.avg_degree = 3.0;
  c.homophily = 0.85;
  c.train_per_class = 8;
  c.val_count = 30;
  c.test_count = 60;
  c.seed = seed;
  return GenerateCitation(c);
}

std::shared_ptr<ModelArtifact> TrainArtifact(const SchemeRef& scheme,
                                             NodeModelKind model = NodeModelKind::kGcn,
                                             uint64_t seed = 1) {
  NodeExperimentConfig cfg;
  cfg.model = model;
  cfg.hidden = 12;
  cfg.num_layers = 2;
  cfg.dropout = 0.2f;
  cfg.train.epochs = 12;
  cfg.train.lr = 0.05f;
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(TinyCitation(seed), cfg, scheme);
  spec.seed = seed;
  spec.keep_artifact = true;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  EXPECT_TRUE(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ValueOrDie().artifact;
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.numel(), b.numel());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(static_cast<double>(a.data()[i]) -
                                            static_cast<double>(b.data()[i])));
  }
  return max_diff;
}

struct SchemeCase {
  const char* label;
  SchemeRef ref;
  bool expect_lowered;
};

std::vector<SchemeCase> AllRegistrySchemes() {
  std::vector<SchemeCase> cases;
  cases.push_back({"fp32", SchemeRef::Fp32(), true});
  cases.push_back({"qat8", SchemeRef::Qat(8), true});
  cases.push_back({"qat4", SchemeRef::Qat(4), true});
  cases.push_back({"dq8", SchemeRef::Dq(8), true});
  // A2Q's per-node learned scales are not a per-tensor transform: the
  // lowering must refuse and Predict must fall back to the reference path.
  cases.push_back({"a2q", SchemeRef::A2q(), false});
  cases.push_back({"fixed",
                   SchemeRef::Fixed({{"model/x", 8},
                                     {"gcn0/weight", 2},
                                     {"gcn0/linear_out", 4},
                                     {"gcn1/weight", 4}}),
                   true});
  return cases;
}

// The acceptance contract: for every built-in registry scheme, the lowered
// Predict matches PredictReference within 1e-4 (in fact bitwise for lowered
// schemes, and trivially for fallback schemes).
TEST(ServingLoweringTest, LoweredMatchesReferenceAcrossSchemes) {
  for (const SchemeCase& c : AllRegistrySchemes()) {
    SCOPED_TRACE(c.label);
    auto artifact = TrainArtifact(c.ref);
    ASSERT_NE(artifact, nullptr);
    Result<CompiledModelPtr> compiled = CompileModel(*artifact);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    const CompiledModelPtr& model = compiled.ValueOrDie();
    EXPECT_EQ(model->info().lowered, c.expect_lowered);

    Result<Tensor> reference =
        model->PredictReference(artifact->features, artifact->op);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    Result<Tensor> lowered = model->Predict(artifact->features, artifact->op);
    ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
    EXPECT_LE(MaxAbsDiff(lowered.ValueOrDie(), reference.ValueOrDie()), 1e-4);
    if (c.expect_lowered) {
      // The lowered plan replays the reference arithmetic exactly.
      EXPECT_EQ(lowered.ValueOrDie().data(), reference.ValueOrDie().data());
    }
  }
}

TEST(ServingLoweringTest, SageBackboneParity) {
  for (const SchemeRef& ref : {SchemeRef::Fp32(), SchemeRef::Qat(8)}) {
    auto artifact = TrainArtifact(ref, NodeModelKind::kSage);
    ASSERT_NE(artifact, nullptr);
    CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
    EXPECT_TRUE(model->info().lowered);
    Tensor reference =
        model->PredictReference(artifact->features, artifact->op).ValueOrDie();
    Tensor lowered = model->Predict(artifact->features, artifact->op).ValueOrDie();
    EXPECT_EQ(lowered.data(), reference.data());
  }
}

// A request over a different graph than the one the model was trained on:
// per-request adjacency quantization must still match the reference.
TEST(ServingLoweringTest, CrossGraphRequestParity) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  auto other = TrainArtifact(SchemeRef::Fp32(), NodeModelKind::kGcn, /*seed=*/7);
  ASSERT_NE(artifact, nullptr);
  ASSERT_NE(other, nullptr);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  Tensor reference =
      model->PredictReference(other->features, other->op).ValueOrDie();
  Tensor lowered = model->Predict(other->features, other->op).ValueOrDie();
  EXPECT_EQ(lowered.data(), reference.data());
}

TEST(ServingLoweringTest, ScratchReuseAcrossRequests) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  Tensor reference = model->Predict(artifact->features, artifact->op).ValueOrDie();
  PredictScratch scratch;
  for (int i = 0; i < 3; ++i) {
    Tensor again =
        model->Predict(artifact->features, artifact->op, &scratch).ValueOrDie();
    EXPECT_EQ(again.data(), reference.data());
  }
}

TEST(ServingLoweringTest, Int8ExecutorTracksReference) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  ASSERT_TRUE(model->info().lowered_int8);

  Tensor reference =
      model->PredictReference(artifact->features, artifact->op).ValueOrDie();
  Result<Tensor> quantized = model->PredictQuantized(artifact->features, artifact->op);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();

  // The integer path is exact up to rounding ties on each requantization, so
  // logits may differ from the float reference by a few quantization steps of
  // the final (8-bit) output quantizer — small relative to the logit range.
  const auto& ref = reference.data();
  float lo = ref[0], hi = ref[0];
  for (float v : ref) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = static_cast<double>(hi) - lo;
  EXPECT_LE(MaxAbsDiff(quantized.ValueOrDie(), reference), 0.05 * range + 1e-6);
}

TEST(ServingLoweringTest, Int8ExecutorSageAndMixedWidths) {
  // SAGE exercises the bias + AddRequant integer steps; the mixed-width
  // fixed scheme exercises intN (< 8-bit) codes inside the int8 executor.
  struct Case {
    SchemeRef ref;
    NodeModelKind model;
  };
  const Case cases[] = {
      {SchemeRef::Qat(8), NodeModelKind::kSage},
      {SchemeRef::Fixed({{"gcn0/weight", 4}, {"gcn0/linear_out", 4},
                         {"gcn1/weight", 2}}),
       NodeModelKind::kGcn},
  };
  for (const Case& c : cases) {
    auto artifact = TrainArtifact(c.ref, c.model);
    ASSERT_NE(artifact, nullptr);
    CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
    ASSERT_TRUE(model->info().lowered_int8) << model->info().scheme_label;
    Tensor reference =
        model->PredictReference(artifact->features, artifact->op).ValueOrDie();
    Result<Tensor> quantized =
        model->PredictQuantized(artifact->features, artifact->op);
    ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
    const auto& ref = reference.data();
    float lo = ref[0], hi = ref[0];
    for (float v : ref) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double range = static_cast<double>(hi) - lo;
    EXPECT_LE(MaxAbsDiff(quantized.ValueOrDie(), reference), 0.1 * range + 1e-6);
  }
}

TEST(ServingLoweringTest, Int8ExecutorGatedOnWidth) {
  // A 16-bit component keeps the exact lowering but rules out int8 codes.
  auto artifact = TrainArtifact(
      SchemeRef::Fixed({{"gcn1/linear_out", 16}}), NodeModelKind::kGcn);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  EXPECT_TRUE(model->info().lowered);
  EXPECT_FALSE(model->info().lowered_int8);
  Tensor reference =
      model->PredictReference(artifact->features, artifact->op).ValueOrDie();
  Tensor lowered = model->Predict(artifact->features, artifact->op).ValueOrDie();
  EXPECT_EQ(lowered.data(), reference.data());
}

TEST(ServingLoweringTest, Int8ExecutorUnavailableForFp32) {
  auto artifact = TrainArtifact(SchemeRef::Fp32());
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  EXPECT_TRUE(model->info().lowered);
  EXPECT_FALSE(model->info().lowered_int8);
  EXPECT_EQ(
      model->PredictQuantized(artifact->features, artifact->op).status().code(),
      StatusCode::kNotImplemented);
}

// Regression for the padded-GEMM compaction: with enough rows that
// ParallelFor actually chunks, the in-place stripping of padding columns
// must not let one chunk overwrite another's unread rows. Hidden width 20
// (padded to 32) and 7 classes (padded to 16) both take the padded path.
TEST(ServingLoweringTest, LargeGraphPaddedOutputsStayExact) {
  CitationConfig c;
  c.name = "serving-padded";
  c.num_nodes = 700;
  c.num_classes = 7;
  c.feature_dim = 24;
  c.avg_degree = 3.0;
  c.homophily = 0.8;
  c.val_count = 100;
  c.test_count = 200;
  c.seed = 3;
  NodeExperimentConfig cfg;
  cfg.hidden = 20;
  cfg.num_layers = 2;
  cfg.train.epochs = 4;
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(GenerateCitation(c), cfg, SchemeRef::Qat(8));
  spec.keep_artifact = true;
  auto report = Experiment::Create(std::move(spec)).ValueOrDie().Run();
  auto artifact = report.ValueOrDie().artifact;
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  ASSERT_TRUE(model->info().lowered);
  Tensor reference =
      model->PredictReference(artifact->features, artifact->op).ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    Tensor lowered = model->Predict(artifact->features, artifact->op).ValueOrDie();
    ASSERT_EQ(lowered.data(), reference.data()) << "iteration " << i;
  }
}

// The concurrency acceptance test: >= 8 threads hammering the engine's
// lock-free hot path must all see logits identical to the single-threaded
// reference.
TEST(ServingConcurrencyTest, EightThreadsDeterministic) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8), NodeModelKind::kGcn, /*seed=*/5);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  ASSERT_TRUE(model->info().lowered);

  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  Tensor reference =
      model->PredictReference(artifact->features, artifact->op).ValueOrDie();

  constexpr int kThreads = 8;
  constexpr int kRequests = 16;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kRequests; ++i) {
        Result<Tensor> out = engine.Predict("m", artifact->features, artifact->op);
        if (!out.ok() || out.ValueOrDie().data() != reference.data()) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;

  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.requests, kThreads * kRequests);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.per_model.at("m").successes, kThreads * kRequests);
  EXPECT_GT(stats.per_model.at("m").p99_us, 0.0);
}

// ---------------------------------------------------------------------------
// Asynchronous request/response API: graph registry, Submit, micro-batching.
// ---------------------------------------------------------------------------

/// Polls `cond` for up to `timeout_ms`; returns its final value.
bool WaitFor(const std::function<bool()>& cond, int timeout_ms = 10000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

PredictRequest MakeRequest(std::string model, std::string graph,
                           std::vector<int64_t> node_ids = {},
                           Precision precision = Precision::kFp32) {
  PredictRequest request;
  request.model = std::move(model);
  request.graph = std::move(graph);
  request.node_ids = std::move(node_ids);
  request.precision = precision;
  return request;
}

TEST(GraphRegistryTest, Lifecycle) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  InferenceEngine engine;
  EXPECT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());
  EXPECT_EQ(engine.RegisterGraph("g", artifact->features, artifact->op).code(),
            StatusCode::kInvalidArgument);  // duplicate
  EXPECT_EQ(engine.RegisterGraph("", artifact->features, artifact->op).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.RegisterGraph("null-op", artifact->features, nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.RegisterGraph("undef", Tensor(), artifact->op).code(),
            StatusCode::kInvalidArgument);
  // Operator/feature shape mismatch.
  Rng rng(1);
  Tensor wrong_rows = Tensor::RandomUniform(Shape(7, 20), &rng, -1.0f, 1.0f);
  EXPECT_EQ(engine.RegisterGraph("mismatch", wrong_rows, artifact->op).code(),
            StatusCode::kInvalidArgument);
  // Rectangular operators cannot serve (fewer logit rows than nodes, and
  // node ids past op.rows() would reach the pruned analysis).
  const int64_t n = artifact->features.rows();
  SparseOperatorPtr rect = MakeOperator(
      CsrMatrix::FromCoo(n - 1, n, {{0, 0, 1.0f}, {n - 2, n - 1, 1.0f}}));
  EXPECT_EQ(engine.RegisterGraph("rect", artifact->features, rect).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(engine.GraphNames(), std::vector<std::string>{"g"});
  ASSERT_TRUE(engine.GetGraph("g").ok());
  const uint64_t v1 = engine.GetGraph("g").ValueOrDie()->version;
  EXPECT_GT(v1, 0u);
  EXPECT_EQ(engine.GetGraph("absent").status().code(), StatusCode::kNotFound);

  // ReplaceGraph bumps the version (the cache invalidation handle).
  EXPECT_TRUE(engine.ReplaceGraph("g", artifact->features, artifact->op).ok());
  EXPECT_GT(engine.GetGraph("g").ValueOrDie()->version, v1);

  EXPECT_TRUE(engine.UnregisterGraph("g").ok());
  EXPECT_EQ(engine.UnregisterGraph("g").code(), StatusCode::kNotFound);
}

TEST(SubmitTest, SingleRequestMatchesPredictBitwise) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

  Tensor reference = model->Predict(artifact->features, artifact->op).ValueOrDie();

  // All rows (empty node_ids).
  Result<PredictResponse> all = engine.Submit(MakeRequest("m", "g")).get();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all.ValueOrDie().rows.data(), reference.data());
  EXPECT_EQ(all.ValueOrDie().precision, Precision::kFp32);
  EXPECT_GE(all.ValueOrDie().total_us, all.ValueOrDie().forward_us);

  // A row subset, in a caller-chosen order.
  const std::vector<int64_t> ids = {17, 3, 17, 159};
  Result<PredictResponse> subset =
      engine.Submit(MakeRequest("m", "g", ids)).get();
  ASSERT_TRUE(subset.ok()) << subset.status().ToString();
  const PredictResponse& r = subset.ValueOrDie();
  EXPECT_EQ(r.node_ids, ids);
  ASSERT_EQ(r.rows.rows(), static_cast<int64_t>(ids.size()));
  ASSERT_EQ(r.rows.cols(), reference.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    for (int64_t c = 0; c < reference.cols(); ++c) {
      EXPECT_EQ(r.rows.at(static_cast<int64_t>(i), c), reference.at(ids[i], c));
    }
  }
}

TEST(SubmitTest, ErrorsForUnknownNamesAndBadIds) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

  EXPECT_EQ(engine.Submit(MakeRequest("absent", "g")).get().status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.Submit(MakeRequest("m", "absent")).get().status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      engine.Submit(MakeRequest("m", "g", {artifact->features.rows()}))
          .get()
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Submit(MakeRequest("m", "g", {-1})).get().status().code(),
            StatusCode::kInvalidArgument);

  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.requests, 4);
  EXPECT_EQ(stats.failures, 4);
  // Failures after model resolution are attributed to the model.
  EXPECT_EQ(stats.per_model.at("m").failures, 3);
  EXPECT_EQ(stats.per_model.at("m").successes, 0);
}

TEST(SubmitTest, PrecisionResolution) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr int8_model = CompileModel(*artifact).ValueOrDie();
  ASSERT_TRUE(int8_model->info().lowered_int8);
  auto fp32_artifact = TrainArtifact(SchemeRef::Fp32());
  CompiledModelPtr fp32_model = CompileModel(*fp32_artifact).ValueOrDie();
  ASSERT_FALSE(fp32_model->info().lowered_int8);

  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterModel("int8", int8_model).ok());
  ASSERT_TRUE(engine.RegisterModel("fp32", fp32_model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

  // Explicit int8 serves through PredictQuantized (documented tolerance).
  Result<PredictResponse> int8_response =
      engine.Submit(MakeRequest("int8", "g", {}, Precision::kInt8)).get();
  ASSERT_TRUE(int8_response.ok()) << int8_response.status().ToString();
  EXPECT_EQ(int8_response.ValueOrDie().precision, Precision::kInt8);
  Tensor quantized =
      int8_model->PredictQuantized(artifact->features, artifact->op).ValueOrDie();
  EXPECT_EQ(int8_response.ValueOrDie().rows.data(), quantized.data());

  // Auto resolves to the cheapest available mode: int8 here.
  Result<PredictResponse> auto_response =
      engine.Submit(MakeRequest("int8", "g", {}, Precision::kAuto)).get();
  ASSERT_TRUE(auto_response.ok());
  EXPECT_EQ(auto_response.ValueOrDie().precision, Precision::kInt8);

  // A model without the integer lowering: int8 is an error, auto falls back.
  EXPECT_EQ(engine.Submit(MakeRequest("fp32", "g", {}, Precision::kInt8))
                .get()
                .status()
                .code(),
            StatusCode::kNotImplemented);
  Result<PredictResponse> fallback =
      engine.Submit(MakeRequest("fp32", "g", {}, Precision::kAuto)).get();
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback.ValueOrDie().precision, Precision::kFp32);
}

// N concurrent single-node clients are coalesced into ONE forward whose
// gathered rows are bitwise-equal to individual CompiledModel::Predict
// calls — the tentpole acceptance contract.
TEST(SubmitTest, CoalescedBatchMatchesIndividualPredictsBitwise) {
  auto slow_artifact = TrainArtifact(SchemeRef::A2q());  // not lowered: serializes
  CompiledModelPtr slow_model = CompileModel(*slow_artifact).ValueOrDie();
  ASSERT_FALSE(slow_model->info().lowered);
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();

  BatcherOptions options;
  options.enable_cache = false;  // force a real coalesced forward
  InferenceEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("slow", slow_model).ok());
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(
      engine.RegisterGraph("stall", slow_artifact->features, slow_artifact->op).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

  Tensor reference = model->Predict(artifact->features, artifact->op).ValueOrDie();
  const int64_t n = artifact->features.rows();

  // Stall the dispatcher inside the slow model's forward, queue K
  // single-node requests behind it, then release: they all land in one
  // drain cycle and one group.
  std::unique_lock<std::mutex> stall(*slow_artifact->forward_mu);
  std::future<Result<PredictResponse>> blocked =
      engine.Submit(MakeRequest("slow", "stall"));
  ASSERT_TRUE(WaitFor([&] {
    InferenceEngine::Stats s = engine.GetStats();
    return s.batcher.in_dispatch >= 1 && s.batcher.queue_depth == 0;
  }));

  constexpr int kClients = 8;
  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int i = 0; i < kClients; ++i) {
    futures.push_back(engine.Submit(MakeRequest("m", "g", {(i * 13) % n})));
  }
  stall.unlock();

  ASSERT_TRUE(blocked.get().ok());
  for (int i = 0; i < kClients; ++i) {
    Result<PredictResponse> response = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const PredictResponse& r = response.ValueOrDie();
    EXPECT_EQ(r.batch_size, kClients);  // all eight in one group
    EXPECT_FALSE(r.cache_hit);
    const int64_t id = (i * 13) % n;
    for (int64_t c = 0; c < reference.cols(); ++c) {
      EXPECT_EQ(r.rows.at(0, c), reference.at(id, c)) << "client " << i;
    }
  }
  // The eight clients cost exactly one lowered forward, not eight: total
  // forwards on this engine = the stalled one + one coalesced batch.
  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.batcher.forwards, 2);
  EXPECT_EQ(stats.per_model.at("m").successes, kClients);
}

TEST(SubmitTest, DeadlineExpiryUnderStalledDispatcher) {
  auto slow_artifact = TrainArtifact(SchemeRef::A2q());
  CompiledModelPtr slow_model = CompileModel(*slow_artifact).ValueOrDie();
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();

  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterModel("slow", slow_model).ok());
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(
      engine.RegisterGraph("stall", slow_artifact->features, slow_artifact->op).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

  // A deadline already in the past is rejected at admission.
  PredictRequest late = MakeRequest("m", "g");
  late.deadline = ServingClock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(engine.Submit(std::move(late)).get().status().code(),
            StatusCode::kDeadlineExceeded);

  // Stall the dispatcher, queue requests whose deadline passes while they
  // wait, release: they must be expired, not served late.
  std::unique_lock<std::mutex> stall(*slow_artifact->forward_mu);
  std::future<Result<PredictResponse>> blocked =
      engine.Submit(MakeRequest("slow", "stall"));
  ASSERT_TRUE(WaitFor([&] {
    InferenceEngine::Stats s = engine.GetStats();
    return s.batcher.in_dispatch >= 1 && s.batcher.queue_depth == 0;
  }));

  constexpr int kExpiring = 3;
  std::vector<std::future<Result<PredictResponse>>> doomed;
  for (int i = 0; i < kExpiring; ++i) {
    PredictRequest request = MakeRequest("m", "g", {0});
    request.deadline = ServingClock::now() + std::chrono::milliseconds(5);
    doomed.push_back(engine.Submit(std::move(request)));
  }
  std::future<Result<PredictResponse>> patient =
      engine.Submit(MakeRequest("m", "g", {0}));  // no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stall.unlock();

  ASSERT_TRUE(blocked.get().ok());
  for (auto& future : doomed) {
    EXPECT_EQ(future.get().status().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_TRUE(patient.get().ok());
  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.batcher.expired, kExpiring + 1);  // + the admission-time one
  EXPECT_GE(stats.per_model.at("m").failures, kExpiring);
}

TEST(SubmitTest, QueueOverflowRejectsWithResourceExhausted) {
  auto slow_artifact = TrainArtifact(SchemeRef::A2q());
  CompiledModelPtr slow_model = CompileModel(*slow_artifact).ValueOrDie();
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();

  BatcherOptions options;
  options.queue_capacity = 2;
  InferenceEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("slow", slow_model).ok());
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(
      engine.RegisterGraph("stall", slow_artifact->features, slow_artifact->op).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

  std::unique_lock<std::mutex> stall(*slow_artifact->forward_mu);
  std::future<Result<PredictResponse>> blocked =
      engine.Submit(MakeRequest("slow", "stall"));
  ASSERT_TRUE(WaitFor([&] {
    InferenceEngine::Stats s = engine.GetStats();
    return s.batcher.in_dispatch >= 1 && s.batcher.queue_depth == 0;
  }));

  // Capacity 2: two queue, the third is rejected immediately (the returned
  // future is already resolved, the client never blocks).
  std::future<Result<PredictResponse>> queued1 = engine.Submit(MakeRequest("m", "g", {0}));
  std::future<Result<PredictResponse>> queued2 = engine.Submit(MakeRequest("m", "g", {1}));
  std::future<Result<PredictResponse>> rejected = engine.Submit(MakeRequest("m", "g", {2}));
  EXPECT_EQ(rejected.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(rejected.get().status().code(), StatusCode::kResourceExhausted);

  stall.unlock();
  ASSERT_TRUE(blocked.get().ok());
  EXPECT_TRUE(queued1.get().ok());
  EXPECT_TRUE(queued2.get().ok());
  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.batcher.rejected, 1);
  EXPECT_EQ(stats.failures, 1);
}

TEST(SubmitTest, CacheInvalidationOnReplaceGraphAndReplaceModel) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  auto other = TrainArtifact(SchemeRef::Fp32(), NodeModelKind::kGcn, /*seed=*/7);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  CompiledModelPtr other_model = CompileModel(*other).ValueOrDie();

  InferenceEngine engine;  // cache enabled by default
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

  // First request fills the cache; the repeat is a row gather off it.
  Result<PredictResponse> first = engine.Submit(MakeRequest("m", "g")).get();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.ValueOrDie().cache_hit);
  Result<PredictResponse> repeat = engine.Submit(MakeRequest("m", "g")).get();
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.ValueOrDie().cache_hit);
  EXPECT_EQ(repeat.ValueOrDie().forward_us, 0.0);
  EXPECT_EQ(repeat.ValueOrDie().rows.data(), first.ValueOrDie().rows.data());

  // ReplaceGraph: the cached logits are for the old features — must miss.
  ASSERT_TRUE(engine.ReplaceGraph("g", other->features, other->op).ok());
  Result<PredictResponse> after_graph = engine.Submit(MakeRequest("m", "g")).get();
  ASSERT_TRUE(after_graph.ok());
  EXPECT_FALSE(after_graph.ValueOrDie().cache_hit);
  Tensor expected = model->Predict(other->features, other->op).ValueOrDie();
  EXPECT_EQ(after_graph.ValueOrDie().rows.data(), expected.data());

  // Warm the cache again, then ReplaceModel: must miss and use the new model.
  ASSERT_TRUE(engine.Submit(MakeRequest("m", "g")).get().ok());
  ASSERT_TRUE(engine.ReplaceModel("m", other_model).ok());
  Result<PredictResponse> after_model = engine.Submit(MakeRequest("m", "g")).get();
  ASSERT_TRUE(after_model.ok());
  EXPECT_FALSE(after_model.ValueOrDie().cache_hit);
  Tensor expected2 = other_model->Predict(other->features, other->op).ValueOrDie();
  EXPECT_EQ(after_model.ValueOrDie().rows.data(), expected2.data());

  // And the refreshed entries serve hits again.
  EXPECT_TRUE(engine.Submit(MakeRequest("m", "g")).get().ValueOrDie().cache_hit);
}

// Regression: registry versions come from an engine-global monotonic
// counter. If Unregister + Register under the same name restarted versions
// at 1, the cache would serve the OLD model's logits for the new one.
TEST(SubmitTest, CacheNotServedAcrossUnregisterAndReregister) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  auto other = TrainArtifact(SchemeRef::Fp32(), NodeModelKind::kGcn, /*seed=*/7);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  CompiledModelPtr other_model = CompileModel(*other).ValueOrDie();

  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());
  ASSERT_TRUE(engine.Submit(MakeRequest("m", "g")).get().ok());  // fill cache

  ASSERT_TRUE(engine.UnregisterModel("m").ok());
  ASSERT_TRUE(engine.RegisterModel("m", other_model).ok());
  Result<PredictResponse> after_model = engine.Submit(MakeRequest("m", "g")).get();
  ASSERT_TRUE(after_model.ok());
  EXPECT_FALSE(after_model.ValueOrDie().cache_hit);
  Tensor expected =
      other_model->Predict(artifact->features, artifact->op).ValueOrDie();
  EXPECT_EQ(after_model.ValueOrDie().rows.data(), expected.data());

  ASSERT_TRUE(engine.UnregisterGraph("g").ok());
  ASSERT_TRUE(engine.RegisterGraph("g", other->features, other->op).ok());
  Result<PredictResponse> after_graph = engine.Submit(MakeRequest("m", "g")).get();
  ASSERT_TRUE(after_graph.ok());
  EXPECT_FALSE(after_graph.ValueOrDie().cache_hit);
  Tensor expected2 =
      other_model->Predict(other->features, other->op).ValueOrDie();
  EXPECT_EQ(after_graph.ValueOrDie().rows.data(), expected2.data());
}

// ReplaceGraph with a SMALLER graph: node ids valid on the old graph must be
// rejected against the new one, and an empty-node_ids request must serve the
// new graph's row count — never the stale cached logits of the larger graph.
TEST(SubmitTest, ReplaceGraphShrinkServesNewGraphAndRejectsOldIds) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));  // 160-node graph
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();

  InferenceEngine engine;  // cache enabled by default
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

  // Warm the cache with full logits of the 160-node graph.
  Result<PredictResponse> full = engine.Submit(MakeRequest("m", "g")).get();
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full.ValueOrDie().rows.rows(), artifact->features.rows());

  // Shrink to an 80-node graph with the same feature width.
  CitationConfig c;
  c.name = "serving-shrunk";
  c.num_nodes = 80;
  c.num_classes = 3;
  c.feature_dim = 20;
  c.avg_degree = 3.0;
  c.homophily = 0.85;
  c.train_per_class = 8;
  c.val_count = 10;
  c.test_count = 20;
  c.seed = 11;
  NodeDataset small = GenerateCitation(c);
  SparseOperatorPtr small_op =
      MakeOperator(GcnNormalize(small.graph.Adjacency()));
  ASSERT_TRUE(
      engine.ReplaceGraph("g", small.graph.features, small_op).ok());

  // An id that was valid on the old graph is out of range on the new one.
  EXPECT_EQ(engine.Submit(MakeRequest("m", "g", {120})).get().status().code(),
            StatusCode::kInvalidArgument);

  // Empty node_ids means "all rows of the CURRENT graph": the 160-row cache
  // entry must not serve; the response matches a direct predict on the new
  // graph bitwise.
  Result<PredictResponse> after = engine.Submit(MakeRequest("m", "g")).get();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after.ValueOrDie().cache_hit);
  ASSERT_EQ(after.ValueOrDie().rows.rows(), small.graph.features.rows());
  Tensor expected = model->Predict(small.graph.features, small_op).ValueOrDie();
  EXPECT_EQ(after.ValueOrDie().rows.data(), expected.data());
}

// Submit against names that existed but were unregistered: typed kNotFound,
// same as never-registered names, and counted as engine-level failures.
TEST(SubmitTest, UnregisteredNamesFailTyped) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();

  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());
  ASSERT_TRUE(engine.Submit(MakeRequest("m", "g", {0})).get().ok());

  ASSERT_TRUE(engine.UnregisterModel("m").ok());
  EXPECT_EQ(engine.Submit(MakeRequest("m", "g", {0})).get().status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(engine.UnregisterGraph("g").ok());
  EXPECT_EQ(engine.Submit(MakeRequest("m", "g", {0})).get().status().code(),
            StatusCode::kNotFound);

  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.failures, 2);
}

TEST(SubmitTest, ConcurrentClientsSeeConsistentRows) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8), NodeModelKind::kGcn, /*seed=*/9);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());
  Tensor reference = model->Predict(artifact->features, artifact->op).ValueOrDie();
  const int64_t n = artifact->features.rows();

  constexpr int kThreads = 8;
  constexpr int kRequests = 25;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequests; ++i) {
        const int64_t id = (t * kRequests + i) % n;
        Result<PredictResponse> response =
            engine.Submit(MakeRequest("m", "g", {id})).get();
        if (!response.ok()) {
          ++mismatches[t];
          continue;
        }
        const Tensor& rows = response.ValueOrDie().rows;
        for (int64_t c = 0; c < reference.cols(); ++c) {
          if (rows.at(0, c) != reference.at(id, c)) ++mismatches[t];
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;

  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.per_model.at("m").successes, kThreads * kRequests);
  EXPECT_EQ(stats.per_model.at("m").failures, 0);
  // The whole run needs exactly one forward: every request after the first
  // is either coalesced with it or a cache hit.
  EXPECT_EQ(stats.batcher.forwards, 1);
}

// ---------------------------------------------------------------------------
// Receptive-field-pruned serving.
// ---------------------------------------------------------------------------

using engine::FrontierProgram;

/// Asserts rows `targets` of `full` == the pruned output, bitwise.
void ExpectPrunedRowsMatch(const Tensor& pruned, const Tensor& full,
                           const std::vector<int64_t>& targets) {
  ASSERT_EQ(pruned.rows(), static_cast<int64_t>(targets.size()));
  ASSERT_EQ(pruned.cols(), full.cols());
  for (size_t i = 0; i < targets.size(); ++i) {
    for (int64_t c = 0; c < full.cols(); ++c) {
      EXPECT_EQ(pruned.at(static_cast<int64_t>(i), c), full.at(targets[i], c))
          << "node " << targets[i] << " col " << c;
    }
  }
}

// The tentpole contract: for every lowered registry scheme (GCN and SAGE
// backbones), the pruned forward's rows are bitwise identical to the
// full-graph forward's.
TEST(PrunedServingTest, PrunedMatchesFullBitwiseAcrossSchemes) {
  struct Case {
    const char* label;
    SchemeRef ref;
    NodeModelKind model;
  };
  std::vector<Case> cases;
  cases.push_back({"fp32", SchemeRef::Fp32(), NodeModelKind::kGcn});
  cases.push_back({"qat8", SchemeRef::Qat(8), NodeModelKind::kGcn});
  cases.push_back({"dq8", SchemeRef::Dq(8), NodeModelKind::kGcn});
  cases.push_back({"fixed",
                   SchemeRef::Fixed({{"model/x", 8},
                                     {"gcn0/weight", 2},
                                     {"gcn0/linear_out", 4},
                                     {"gcn1/weight", 4}}),
                   NodeModelKind::kGcn});
  cases.push_back({"mixq", SchemeRef::MixQ(0.1), NodeModelKind::kGcn});
  cases.push_back({"qat8-sage", SchemeRef::Qat(8), NodeModelKind::kSage});
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    auto artifact = TrainArtifact(c.ref, c.model);
    ASSERT_NE(artifact, nullptr);
    CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
    ASSERT_TRUE(model->info().lowered);
    Tensor full = model->Predict(artifact->features, artifact->op).ValueOrDie();
    const int64_t n = artifact->features.rows();

    FrontierWorkspace ws;
    PredictScratch scratch;
    const std::vector<std::vector<int64_t>> target_sets = {
        {0}, {n - 1}, {5, 42, 107}, {1, 2, 3, 4, 5, 6, 7, 8}};
    for (const std::vector<int64_t>& targets : target_sets) {
      auto program = model->BuildFrontierProgram(artifact->op, targets,
                                                 /*int8=*/false, &ws,
                                                 /*max_cost_fraction=*/10.0);
      ASSERT_NE(program, nullptr);
      EXPECT_GT(program->frontier_rows(), 0);
      EXPECT_LT(program->frontier_nnz(), program->full_nnz());
      Result<Tensor> pruned =
          model->PredictPruned(artifact->features, *program, &scratch);
      ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
      ExpectPrunedRowsMatch(pruned.ValueOrDie(), full, targets);
    }
  }
}

TEST(PrunedServingTest, PrunedInt8MatchesFullInt8Bitwise) {
  // The integer pruned executor computes the SAME codes as ExecuteInt8 for
  // the surviving rows, so parity with PredictQuantized is bitwise — no
  // tolerance needed (the tolerance lives between int8 and the reference).
  for (NodeModelKind kind : {NodeModelKind::kGcn, NodeModelKind::kSage}) {
    SCOPED_TRACE(kind == NodeModelKind::kGcn ? "gcn" : "sage");
    auto artifact = TrainArtifact(SchemeRef::Qat(8), kind);
    CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
    ASSERT_TRUE(model->info().lowered_int8);
    Tensor full =
        model->PredictQuantized(artifact->features, artifact->op).ValueOrDie();
    FrontierWorkspace ws;
    PredictScratch scratch;
    const std::vector<int64_t> targets = {3, 77, 150};
    auto program = model->BuildFrontierProgram(artifact->op, targets,
                                               /*int8=*/true, &ws, 10.0);
    ASSERT_NE(program, nullptr);
    EXPECT_TRUE(program->int8());
    Result<Tensor> pruned =
        model->PredictPruned(artifact->features, *program, &scratch);
    ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
    ExpectPrunedRowsMatch(pruned.ValueOrDie(), full, targets);
  }
}

TEST(PrunedServingTest, IsolatedNodeRows) {
  // A node with no in-edges has an empty receptive field beyond itself; the
  // induced slices carry empty rows and the pruned output must still match
  // the full forward (which aggregates zero for it). RowNormalize (SAGE)
  // leaves the isolated row truly empty; GcnNormalize gives it a self-loop.
  for (NodeModelKind kind : {NodeModelKind::kGcn, NodeModelKind::kSage}) {
    SCOPED_TRACE(kind == NodeModelKind::kGcn ? "gcn" : "sage");
    auto artifact = TrainArtifact(SchemeRef::Qat(8), kind);
    CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
    const int64_t n = 300;
    // Ring over nodes 0..n-2; node n-1 isolated.
    std::vector<CooEntry> edges;
    for (int64_t v = 0; v + 1 < n; ++v) {
      edges.push_back({v, (v + 1) % (n - 1), 1.0f});
      edges.push_back({(v + 1) % (n - 1), v, 1.0f});
    }
    CsrMatrix adj = CsrMatrix::FromCoo(n, n, std::move(edges));
    SparseOperatorPtr op = MakeOperator(
        kind == NodeModelKind::kGcn ? GcnNormalize(adj) : RowNormalize(adj));
    Rng rng(11);
    Tensor features = Tensor::RandomUniform(
        Shape(n, artifact->features.cols()), &rng, -1.0f, 1.0f);
    Tensor full = model->Predict(features, op).ValueOrDie();

    FrontierWorkspace ws;
    PredictScratch scratch;
    const std::vector<int64_t> targets = {n - 1};
    auto program =
        model->BuildFrontierProgram(op, targets, /*int8=*/false, &ws, 10.0);
    ASSERT_NE(program, nullptr);
    Result<Tensor> pruned = model->PredictPruned(features, *program, &scratch);
    ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
    ExpectPrunedRowsMatch(pruned.ValueOrDie(), full, targets);
  }
}

TEST(PrunedServingTest, CostGateRefusesWideReceptiveFields) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  const int64_t n = artifact->features.rows();
  std::vector<int64_t> all(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
  FrontierWorkspace ws;
  // Every node requested: the frontier IS the graph; the default-style
  // fraction must refuse so the batcher serves (and caches) a full forward.
  EXPECT_EQ(model->BuildFrontierProgram(artifact->op, all, false, &ws, 0.5),
            nullptr);
  EXPECT_EQ(model->BuildFrontierProgram(artifact->op, {}, false, &ws, 0.5),
            nullptr);
  // A non-lowered model has no plan to prune.
  auto a2q = TrainArtifact(SchemeRef::A2q());
  CompiledModelPtr fallback = CompileModel(*a2q).ValueOrDie();
  EXPECT_EQ(fallback->BuildFrontierProgram(a2q->op, {0}, false, &ws, 10.0),
            nullptr);
  // And an fp32-only model has no int8 program.
  auto fp32 = TrainArtifact(SchemeRef::Fp32());
  CompiledModelPtr fp32_model = CompileModel(*fp32).ValueOrDie();
  EXPECT_EQ(fp32_model->BuildFrontierProgram(fp32->op, {0}, true, &ws, 10.0),
            nullptr);
}

// Engine-level routing: small-graph guard disabled and the cost gate
// opened up so the 160-node test graph exercises the pruned path end to
// end (the calibrated default fraction is tuned for graphs where pruning
// actually pays; here we test routing mechanics, not the threshold).
BatcherOptions PrunedOptions(bool cache) {
  BatcherOptions options;
  options.enable_cache = cache;
  options.pruned_min_graph_nodes = 0;
  options.pruned_max_cost_fraction = 0.9;
  return options;
}

TEST(SubmitTest, SingleNodeRequestRoutesPrunedAndMatchesBitwise) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  InferenceEngine engine(PrunedOptions(/*cache=*/false));
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());
  Tensor reference = model->Predict(artifact->features, artifact->op).ValueOrDie();

  Result<PredictResponse> response = engine.Submit(MakeRequest("m", "g", {42})).get();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const PredictResponse& r = response.ValueOrDie();
  EXPECT_TRUE(r.pruned);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_GT(r.frontier_rows, 0);
  for (int64_t c = 0; c < reference.cols(); ++c) {
    EXPECT_EQ(r.rows.at(0, c), reference.at(42, c));
  }
  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.batcher.pruned_forwards, 1);
  EXPECT_EQ(stats.batcher.full_forwards, 0);
  EXPECT_EQ(stats.batcher.forwards, 1);
}

TEST(SubmitTest, AllNodesRequestRoutesFullAndStillHitsCache) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  InferenceEngine engine(PrunedOptions(/*cache=*/true));
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

  // Empty node_ids = all rows: must take the full path and fill the cache
  // even though pruning is enabled.
  Result<PredictResponse> first = engine.Submit(MakeRequest("m", "g")).get();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.ValueOrDie().pruned);
  EXPECT_FALSE(first.ValueOrDie().cache_hit);
  Result<PredictResponse> repeat = engine.Submit(MakeRequest("m", "g")).get();
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.ValueOrDie().cache_hit);
  // With valid cached full logits, even a point query is a row gather —
  // cheaper than any pruned forward.
  Result<PredictResponse> point = engine.Submit(MakeRequest("m", "g", {7})).get();
  ASSERT_TRUE(point.ok());
  EXPECT_TRUE(point.ValueOrDie().cache_hit);
  EXPECT_FALSE(point.ValueOrDie().pruned);

  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.batcher.pruned_forwards, 0);
  EXPECT_EQ(stats.batcher.full_forwards, 1);
  EXPECT_EQ(stats.batcher.cache_hits, 2);
}

// Regression: a request repeating a node id must get one row PER
// OCCURRENCE, in request order, on both the pruned path (where the forward
// dedupes ids into a sorted union) and the full path.
TEST(SubmitTest, DuplicateNodeIdsReturnOneRowPerOccurrence) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  Tensor reference = model->Predict(artifact->features, artifact->op).ValueOrDie();
  const std::vector<int64_t> ids = {7, 3, 7, 7, 159};

  for (bool pruning : {true, false}) {
    SCOPED_TRACE(pruning ? "pruned" : "full");
    BatcherOptions options = PrunedOptions(/*cache=*/false);
    options.enable_pruning = pruning;
    InferenceEngine engine(options);
    ASSERT_TRUE(engine.RegisterModel("m", model).ok());
    ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

    Result<PredictResponse> response =
        engine.Submit(MakeRequest("m", "g", ids)).get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const PredictResponse& r = response.ValueOrDie();
    EXPECT_EQ(r.pruned, pruning);
    EXPECT_EQ(r.node_ids, ids);
    ASSERT_EQ(r.rows.rows(), static_cast<int64_t>(ids.size()));
    for (size_t i = 0; i < ids.size(); ++i) {
      for (int64_t c = 0; c < reference.cols(); ++c) {
        EXPECT_EQ(r.rows.at(static_cast<int64_t>(i), c),
                  reference.at(ids[i], c))
            << "occurrence " << i;
      }
    }
  }
}

// One dispatcher drain carrying both a pruned group and full groups, fed by
// 8 concurrent clients: routing is per group, and each group's rows stay
// bitwise correct.
TEST(SubmitTest, MixedPrunedAndFullRoutingInOneDrain) {
  auto slow_artifact = TrainArtifact(SchemeRef::A2q());  // not lowered: stalls
  CompiledModelPtr slow_model = CompileModel(*slow_artifact).ValueOrDie();
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  auto other = TrainArtifact(SchemeRef::Fp32(), NodeModelKind::kGcn, /*seed=*/7);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();

  InferenceEngine engine(PrunedOptions(/*cache=*/false));
  ASSERT_TRUE(engine.RegisterModel("slow", slow_model).ok());
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(
      engine.RegisterGraph("stall", slow_artifact->features, slow_artifact->op).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());
  ASSERT_TRUE(engine.RegisterGraph("g2", other->features, other->op).ok());

  Tensor ref_g = model->Predict(artifact->features, artifact->op).ValueOrDie();
  Tensor ref_g2 = model->Predict(other->features, other->op).ValueOrDie();
  const int64_t n = artifact->features.rows();

  // Stall the dispatcher, then race 8 clients into one drain: 4 point
  // queries on g (pruned group) and 4 all-rows queries on g2 (full group).
  std::unique_lock<std::mutex> stall(*slow_artifact->forward_mu);
  std::future<Result<PredictResponse>> blocked =
      engine.Submit(MakeRequest("slow", "stall"));
  ASSERT_TRUE(WaitFor([&] {
    InferenceEngine::Stats s = engine.GetStats();
    return s.batcher.in_dispatch >= 1 && s.batcher.queue_depth == 0;
  }));

  constexpr int kClients = 8;
  std::vector<std::future<Result<PredictResponse>>> futures(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      futures[static_cast<size_t>(i)] =
          i % 2 == 0 ? engine.Submit(MakeRequest("m", "g", {(i * 17) % n}))
                     : engine.Submit(MakeRequest("m", "g2"));
    });
  }
  for (auto& c : clients) c.join();
  stall.unlock();
  ASSERT_TRUE(blocked.get().ok());

  for (int i = 0; i < kClients; ++i) {
    Result<PredictResponse> response = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const PredictResponse& r = response.ValueOrDie();
    if (i % 2 == 0) {
      EXPECT_TRUE(r.pruned) << "client " << i;
      const int64_t id = (i * 17) % n;
      for (int64_t c = 0; c < ref_g.cols(); ++c) {
        EXPECT_EQ(r.rows.at(0, c), ref_g.at(id, c)) << "client " << i;
      }
    } else {
      EXPECT_FALSE(r.pruned) << "client " << i;
      EXPECT_EQ(r.rows.data(), ref_g2.data()) << "client " << i;
    }
  }
  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.batcher.pruned_forwards, 1);   // the 4 point queries
  EXPECT_EQ(stats.batcher.full_forwards, 2);     // the stall + the g2 group
  EXPECT_EQ(stats.per_model.at("m").successes, kClients);
}

// ---------------------------------------------------------------------------
// Fused requantization epilogues.
// ---------------------------------------------------------------------------

/// Flips the process-wide fused-epilogue switch and restores the fused
/// default on scope exit, so a failing EXPECT cannot leak the unfused mode
/// into later tests.
struct FusedEpilogueGuard {
  explicit FusedEpilogueGuard(bool fused) {
    engine::ExecutionPlan::SetFusedEpilogues(fused);
  }
  ~FusedEpilogueGuard() { engine::ExecutionPlan::SetFusedEpilogues(true); }
};

// The fusion contract: requantizing int32 accumulators inside the GEMM/SpMM
// epilogues produces codes — and hence logits — bitwise identical to the
// two-pass accumulate-then-requant executor, for every int8-lowered registry
// scheme on both backbones, on the full AND the pruned integer forward.
TEST(FusedEpilogueTest, FusedMatchesUnfusedBitwiseAcrossSchemes) {
  struct Case {
    const char* label;
    SchemeRef ref;
    NodeModelKind kind;
  };
  std::vector<Case> cases;
  cases.push_back({"qat8", SchemeRef::Qat(8), NodeModelKind::kGcn});
  cases.push_back({"qat4", SchemeRef::Qat(4), NodeModelKind::kGcn});
  cases.push_back({"dq8", SchemeRef::Dq(8), NodeModelKind::kGcn});
  cases.push_back({"fixed",
                   SchemeRef::Fixed({{"model/x", 8},
                                     {"gcn0/weight", 2},
                                     {"gcn0/linear_out", 4},
                                     {"gcn1/weight", 4}}),
                   NodeModelKind::kGcn});
  cases.push_back({"qat8-sage", SchemeRef::Qat(8), NodeModelKind::kSage});
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    auto artifact = TrainArtifact(c.ref, c.kind);
    ASSERT_NE(artifact, nullptr);
    CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
    if (!model->info().lowered_int8) continue;  // nothing to fuse

    Tensor unfused, unfused_pruned;
    const std::vector<int64_t> targets = {3, 77, 150};
    {
      FusedEpilogueGuard guard(/*fused=*/false);
      unfused =
          model->PredictQuantized(artifact->features, artifact->op).ValueOrDie();
      FrontierWorkspace ws;
      PredictScratch scratch;
      auto program = model->BuildFrontierProgram(artifact->op, targets,
                                                 /*int8=*/true, &ws, 10.0);
      ASSERT_NE(program, nullptr);
      unfused_pruned =
          model->PredictPruned(artifact->features, *program, &scratch).ValueOrDie();
    }
    FusedEpilogueGuard guard(/*fused=*/true);
    Tensor fused =
        model->PredictQuantized(artifact->features, artifact->op).ValueOrDie();
    EXPECT_EQ(fused.data(), unfused.data());
    FrontierWorkspace ws;
    PredictScratch scratch;
    auto program = model->BuildFrontierProgram(artifact->op, targets,
                                               /*int8=*/true, &ws, 10.0);
    ASSERT_NE(program, nullptr);
    Tensor fused_pruned =
        model->PredictPruned(artifact->features, *program, &scratch).ValueOrDie();
    EXPECT_EQ(fused_pruned.data(), unfused_pruned.data());
  }
}

// ---------------------------------------------------------------------------
// Locality-reordered graph serving.
// ---------------------------------------------------------------------------

using engine::GraphReorder;

BatcherOptions ReorderOptions(GraphReorder mode, bool cache) {
  BatcherOptions options = PrunedOptions(cache);
  options.graph_reorder = mode;
  return options;
}

// The reorder contract: a graph pinned in degree-sorted or RCM order serves
// values bitwise identical to the unordered registration — full responses
// in original row order, subsets (duplicate ids included) in request order,
// at fp32 and int8, with the cache on. SAGE covers the root-path gathers
// (its residual add reads rows the reorder maps must keep aligned).
TEST(ReorderedServingTest, ServingBitwiseEqualToUnorderedAcrossModes) {
  for (NodeModelKind kind : {NodeModelKind::kGcn, NodeModelKind::kSage}) {
    SCOPED_TRACE(kind == NodeModelKind::kGcn ? "gcn" : "sage");
    auto artifact = TrainArtifact(SchemeRef::Qat(8), kind);
    ASSERT_NE(artifact, nullptr);
    CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
    ASSERT_TRUE(model->info().lowered_int8);
    Tensor ref_fp32 = model->Predict(artifact->features, artifact->op).ValueOrDie();
    Tensor ref_int8 =
        model->PredictQuantized(artifact->features, artifact->op).ValueOrDie();
    const std::vector<int64_t> ids = {17, 3, 17, 159, 0};

    for (GraphReorder mode :
         {GraphReorder::kNone, GraphReorder::kDegree, GraphReorder::kRcm}) {
      SCOPED_TRACE(static_cast<int>(mode));
      BatcherOptions options = ReorderOptions(mode, /*cache=*/true);
      options.enable_pruning = false;  // full-path + cache coverage here
      InferenceEngine engine(options);
      ASSERT_TRUE(engine.RegisterModel("m", model).ok());
      ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());
      EXPECT_EQ(engine.ListGraphs().at("g").reordered, mode != GraphReorder::kNone);

      // Full fp32 response: original row order, bitwise.
      Result<PredictResponse> all = engine.Submit(MakeRequest("m", "g")).get();
      ASSERT_TRUE(all.ok()) << all.status().ToString();
      EXPECT_EQ(all.ValueOrDie().rows.data(), ref_fp32.data());

      // Subset with duplicates, request order.
      Result<PredictResponse> subset =
          engine.Submit(MakeRequest("m", "g", ids)).get();
      ASSERT_TRUE(subset.ok()) << subset.status().ToString();
      for (size_t i = 0; i < ids.size(); ++i) {
        for (int64_t col = 0; col < ref_fp32.cols(); ++col) {
          EXPECT_EQ(subset.ValueOrDie().rows.at(static_cast<int64_t>(i), col),
                    ref_fp32.at(ids[i], col));
        }
      }

      // Cached point query gathers from internal-order logits and must still
      // translate.
      Result<PredictResponse> point =
          engine.Submit(MakeRequest("m", "g", {42})).get();
      ASSERT_TRUE(point.ok());
      EXPECT_TRUE(point.ValueOrDie().cache_hit);
      for (int64_t col = 0; col < ref_fp32.cols(); ++col) {
        EXPECT_EQ(point.ValueOrDie().rows.at(0, col), ref_fp32.at(42, col));
      }

      // Full int8 response: the integer executors see the permuted operator
      // and features; codes must be bitwise what the unordered graph yields.
      Result<PredictResponse> all_int8 =
          engine.Submit(MakeRequest("m", "g", {}, Precision::kInt8)).get();
      ASSERT_TRUE(all_int8.ok()) << all_int8.status().ToString();
      EXPECT_EQ(all_int8.ValueOrDie().precision, Precision::kInt8);
      EXPECT_EQ(all_int8.ValueOrDie().rows.data(), ref_int8.data());
    }
  }
}

// Pruned forwards on a reordered graph: targets are translated into the
// internal order before frontier analysis, and gathered rows translate back
// — bitwise equal to the unordered graph's rows on both precisions.
TEST(ReorderedServingTest, PrunedServingBitwiseEqualToUnordered) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  ASSERT_NE(artifact, nullptr);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  Tensor ref_fp32 = model->Predict(artifact->features, artifact->op).ValueOrDie();
  Tensor ref_int8 =
      model->PredictQuantized(artifact->features, artifact->op).ValueOrDie();
  const std::vector<int64_t> ids = {42, 7, 42};

  for (GraphReorder mode : {GraphReorder::kDegree, GraphReorder::kRcm}) {
    SCOPED_TRACE(static_cast<int>(mode));
    InferenceEngine engine(ReorderOptions(mode, /*cache=*/false));
    ASSERT_TRUE(engine.RegisterModel("m", model).ok());
    ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

    for (Precision precision : {Precision::kFp32, Precision::kInt8}) {
      const Tensor& ref = precision == Precision::kInt8 ? ref_int8 : ref_fp32;
      Result<PredictResponse> response =
          engine.Submit(MakeRequest("m", "g", ids, precision)).get();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      const PredictResponse& r = response.ValueOrDie();
      EXPECT_TRUE(r.pruned);
      ASSERT_EQ(r.rows.rows(), static_cast<int64_t>(ids.size()));
      for (size_t i = 0; i < ids.size(); ++i) {
        for (int64_t col = 0; col < ref.cols(); ++col) {
          EXPECT_EQ(r.rows.at(static_cast<int64_t>(i), col), ref.at(ids[i], col))
              << "occurrence " << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-precision forward-time stats.
// ---------------------------------------------------------------------------

TEST(PrecisionStatsTest, ForwardTimeSplitByResolvedPrecision) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  BatcherOptions options;
  options.enable_cache = false;  // every Submit runs a forward
  InferenceEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(engine.RegisterGraph("g", artifact->features, artifact->op).ok());

  ASSERT_TRUE(engine.Submit(MakeRequest("m", "g", {}, Precision::kFp32)).get().ok());
  ASSERT_TRUE(engine.Submit(MakeRequest("m", "g", {}, Precision::kInt8)).get().ok());
  ASSERT_TRUE(engine.Submit(MakeRequest("m", "g", {}, Precision::kInt8)).get().ok());

  InferenceEngine::Stats stats = engine.GetStats();
  const InferenceEngine::ModelStats& ms = stats.per_model.at("m");
  EXPECT_EQ(ms.fp32_forwards, 1);
  EXPECT_EQ(ms.int8_forwards, 2);
  EXPECT_GT(ms.fp32_forward_p50_us, 0.0);
  EXPECT_GT(ms.int8_forward_p50_us, 0.0);
  EXPECT_GE(ms.fp32_forward_p99_us, ms.fp32_forward_p50_us);
  EXPECT_GE(ms.int8_forward_p99_us, ms.int8_forward_p50_us);

  // The sync Predict wrapper counts into the fp32 histogram (it is always
  // exact fp32).
  ASSERT_TRUE(engine.Predict("m", artifact->features, artifact->op).ok());
  EXPECT_EQ(engine.GetStats().per_model.at("m").fp32_forwards, 2);
}

}  // namespace
}  // namespace mixq
