// Copyright 2026 MixQ-GNN Authors
// Tests for the lowered serving path: lowered-vs-reference logit parity
// across every built-in registry scheme, the all-integer executor, cross-
// graph requests, and concurrent lock-free serving through InferenceEngine.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "engine/inference_engine.h"

namespace mixq {
namespace {

using engine::CompileModel;
using engine::CompiledModelPtr;
using engine::InferenceEngine;
using engine::PredictScratch;

NodeDataset TinyCitation(uint64_t seed = 1) {
  CitationConfig c;
  c.name = "serving-tiny";
  c.num_nodes = 160;
  c.num_classes = 3;
  c.feature_dim = 20;
  c.avg_degree = 3.0;
  c.homophily = 0.85;
  c.train_per_class = 8;
  c.val_count = 30;
  c.test_count = 60;
  c.seed = seed;
  return GenerateCitation(c);
}

std::shared_ptr<ModelArtifact> TrainArtifact(const SchemeRef& scheme,
                                             NodeModelKind model = NodeModelKind::kGcn,
                                             uint64_t seed = 1) {
  NodeExperimentConfig cfg;
  cfg.model = model;
  cfg.hidden = 12;
  cfg.num_layers = 2;
  cfg.dropout = 0.2f;
  cfg.train.epochs = 12;
  cfg.train.lr = 0.05f;
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(TinyCitation(seed), cfg, scheme);
  spec.seed = seed;
  spec.keep_artifact = true;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  EXPECT_TRUE(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ValueOrDie().artifact;
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.numel(), b.numel());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(static_cast<double>(a.data()[i]) -
                                            static_cast<double>(b.data()[i])));
  }
  return max_diff;
}

struct SchemeCase {
  const char* label;
  SchemeRef ref;
  bool expect_lowered;
};

std::vector<SchemeCase> AllRegistrySchemes() {
  std::vector<SchemeCase> cases;
  cases.push_back({"fp32", SchemeRef::Fp32(), true});
  cases.push_back({"qat8", SchemeRef::Qat(8), true});
  cases.push_back({"qat4", SchemeRef::Qat(4), true});
  cases.push_back({"dq8", SchemeRef::Dq(8), true});
  // A2Q's per-node learned scales are not a per-tensor transform: the
  // lowering must refuse and Predict must fall back to the reference path.
  cases.push_back({"a2q", SchemeRef::A2q(), false});
  cases.push_back({"fixed",
                   SchemeRef::Fixed({{"model/x", 8},
                                     {"gcn0/weight", 2},
                                     {"gcn0/linear_out", 4},
                                     {"gcn1/weight", 4}}),
                   true});
  return cases;
}

// The acceptance contract: for every built-in registry scheme, the lowered
// Predict matches PredictReference within 1e-4 (in fact bitwise for lowered
// schemes, and trivially for fallback schemes).
TEST(ServingLoweringTest, LoweredMatchesReferenceAcrossSchemes) {
  for (const SchemeCase& c : AllRegistrySchemes()) {
    SCOPED_TRACE(c.label);
    auto artifact = TrainArtifact(c.ref);
    ASSERT_NE(artifact, nullptr);
    Result<CompiledModelPtr> compiled = CompileModel(*artifact);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    const CompiledModelPtr& model = compiled.ValueOrDie();
    EXPECT_EQ(model->info().lowered, c.expect_lowered);

    Result<Tensor> reference =
        model->PredictReference(artifact->features, artifact->op);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    Result<Tensor> lowered = model->Predict(artifact->features, artifact->op);
    ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
    EXPECT_LE(MaxAbsDiff(lowered.ValueOrDie(), reference.ValueOrDie()), 1e-4);
    if (c.expect_lowered) {
      // The lowered plan replays the reference arithmetic exactly.
      EXPECT_EQ(lowered.ValueOrDie().data(), reference.ValueOrDie().data());
    }
  }
}

TEST(ServingLoweringTest, SageBackboneParity) {
  for (const SchemeRef& ref : {SchemeRef::Fp32(), SchemeRef::Qat(8)}) {
    auto artifact = TrainArtifact(ref, NodeModelKind::kSage);
    ASSERT_NE(artifact, nullptr);
    CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
    EXPECT_TRUE(model->info().lowered);
    Tensor reference =
        model->PredictReference(artifact->features, artifact->op).ValueOrDie();
    Tensor lowered = model->Predict(artifact->features, artifact->op).ValueOrDie();
    EXPECT_EQ(lowered.data(), reference.data());
  }
}

// A request over a different graph than the one the model was trained on:
// per-request adjacency quantization must still match the reference.
TEST(ServingLoweringTest, CrossGraphRequestParity) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  auto other = TrainArtifact(SchemeRef::Fp32(), NodeModelKind::kGcn, /*seed=*/7);
  ASSERT_NE(artifact, nullptr);
  ASSERT_NE(other, nullptr);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  Tensor reference =
      model->PredictReference(other->features, other->op).ValueOrDie();
  Tensor lowered = model->Predict(other->features, other->op).ValueOrDie();
  EXPECT_EQ(lowered.data(), reference.data());
}

TEST(ServingLoweringTest, ScratchReuseAcrossRequests) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  Tensor reference = model->Predict(artifact->features, artifact->op).ValueOrDie();
  PredictScratch scratch;
  for (int i = 0; i < 3; ++i) {
    Tensor again =
        model->Predict(artifact->features, artifact->op, &scratch).ValueOrDie();
    EXPECT_EQ(again.data(), reference.data());
  }
}

TEST(ServingLoweringTest, Int8ExecutorTracksReference) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  ASSERT_TRUE(model->info().lowered_int8);

  Tensor reference =
      model->PredictReference(artifact->features, artifact->op).ValueOrDie();
  Result<Tensor> quantized = model->PredictQuantized(artifact->features, artifact->op);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();

  // The integer path is exact up to rounding ties on each requantization, so
  // logits may differ from the float reference by a few quantization steps of
  // the final (8-bit) output quantizer — small relative to the logit range.
  const auto& ref = reference.data();
  float lo = ref[0], hi = ref[0];
  for (float v : ref) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = static_cast<double>(hi) - lo;
  EXPECT_LE(MaxAbsDiff(quantized.ValueOrDie(), reference), 0.05 * range + 1e-6);
}

TEST(ServingLoweringTest, Int8ExecutorSageAndMixedWidths) {
  // SAGE exercises the bias + AddRequant integer steps; the mixed-width
  // fixed scheme exercises intN (< 8-bit) codes inside the int8 executor.
  struct Case {
    SchemeRef ref;
    NodeModelKind model;
  };
  const Case cases[] = {
      {SchemeRef::Qat(8), NodeModelKind::kSage},
      {SchemeRef::Fixed({{"gcn0/weight", 4}, {"gcn0/linear_out", 4},
                         {"gcn1/weight", 2}}),
       NodeModelKind::kGcn},
  };
  for (const Case& c : cases) {
    auto artifact = TrainArtifact(c.ref, c.model);
    ASSERT_NE(artifact, nullptr);
    CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
    ASSERT_TRUE(model->info().lowered_int8) << model->info().scheme_label;
    Tensor reference =
        model->PredictReference(artifact->features, artifact->op).ValueOrDie();
    Result<Tensor> quantized =
        model->PredictQuantized(artifact->features, artifact->op);
    ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
    const auto& ref = reference.data();
    float lo = ref[0], hi = ref[0];
    for (float v : ref) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double range = static_cast<double>(hi) - lo;
    EXPECT_LE(MaxAbsDiff(quantized.ValueOrDie(), reference), 0.1 * range + 1e-6);
  }
}

TEST(ServingLoweringTest, Int8ExecutorGatedOnWidth) {
  // A 16-bit component keeps the exact lowering but rules out int8 codes.
  auto artifact = TrainArtifact(
      SchemeRef::Fixed({{"gcn1/linear_out", 16}}), NodeModelKind::kGcn);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  EXPECT_TRUE(model->info().lowered);
  EXPECT_FALSE(model->info().lowered_int8);
  Tensor reference =
      model->PredictReference(artifact->features, artifact->op).ValueOrDie();
  Tensor lowered = model->Predict(artifact->features, artifact->op).ValueOrDie();
  EXPECT_EQ(lowered.data(), reference.data());
}

TEST(ServingLoweringTest, Int8ExecutorUnavailableForFp32) {
  auto artifact = TrainArtifact(SchemeRef::Fp32());
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  EXPECT_TRUE(model->info().lowered);
  EXPECT_FALSE(model->info().lowered_int8);
  EXPECT_EQ(
      model->PredictQuantized(artifact->features, artifact->op).status().code(),
      StatusCode::kNotImplemented);
}

// Regression for the padded-GEMM compaction: with enough rows that
// ParallelFor actually chunks, the in-place stripping of padding columns
// must not let one chunk overwrite another's unread rows. Hidden width 20
// (padded to 32) and 7 classes (padded to 16) both take the padded path.
TEST(ServingLoweringTest, LargeGraphPaddedOutputsStayExact) {
  CitationConfig c;
  c.name = "serving-padded";
  c.num_nodes = 700;
  c.num_classes = 7;
  c.feature_dim = 24;
  c.avg_degree = 3.0;
  c.homophily = 0.8;
  c.val_count = 100;
  c.test_count = 200;
  c.seed = 3;
  NodeExperimentConfig cfg;
  cfg.hidden = 20;
  cfg.num_layers = 2;
  cfg.train.epochs = 4;
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(GenerateCitation(c), cfg, SchemeRef::Qat(8));
  spec.keep_artifact = true;
  auto report = Experiment::Create(std::move(spec)).ValueOrDie().Run();
  auto artifact = report.ValueOrDie().artifact;
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  ASSERT_TRUE(model->info().lowered);
  Tensor reference =
      model->PredictReference(artifact->features, artifact->op).ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    Tensor lowered = model->Predict(artifact->features, artifact->op).ValueOrDie();
    ASSERT_EQ(lowered.data(), reference.data()) << "iteration " << i;
  }
}

// The concurrency acceptance test: >= 8 threads hammering the engine's
// lock-free hot path must all see logits identical to the single-threaded
// reference.
TEST(ServingConcurrencyTest, EightThreadsDeterministic) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8), NodeModelKind::kGcn, /*seed=*/5);
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  ASSERT_TRUE(model->info().lowered);

  InferenceEngine engine;
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  Tensor reference =
      model->PredictReference(artifact->features, artifact->op).ValueOrDie();

  constexpr int kThreads = 8;
  constexpr int kRequests = 16;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kRequests; ++i) {
        Result<Tensor> out = engine.Predict("m", artifact->features, artifact->op);
        if (!out.ok() || out.ValueOrDie().data() != reference.data()) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;

  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.requests, kThreads * kRequests);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.per_model.at("m"), kThreads * kRequests);
}

}  // namespace
}  // namespace mixq
