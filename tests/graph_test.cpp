// Copyright 2026 MixQ-GNN Authors
// Tests for the graph container, synthetic dataset generators, CSL, and
// Laplacian positional encodings.
#include <gtest/gtest.h>

#include <set>

#include "graph/csl.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/laplacian_pe.h"

namespace mixq {
namespace {

TEST(GraphTest, InDegrees) {
  Graph g;
  g.num_nodes = 3;
  g.edges = {{0, 1, 1.0f}, {0, 2, 1.0f}, {1, 2, 1.0f}};
  auto deg = g.InDegrees();
  EXPECT_EQ(deg[0], 2);
  EXPECT_EQ(deg[1], 1);
  EXPECT_EQ(deg[2], 0);
}

TEST(CitationGeneratorTest, MatchesConfig) {
  CitationConfig c;
  c.num_nodes = 500;
  c.num_classes = 4;
  c.feature_dim = 32;
  c.avg_degree = 3.0;
  c.train_per_class = 10;
  c.val_count = 50;
  c.test_count = 100;
  c.seed = 42;
  NodeDataset ds = GenerateCitation(c);
  const Graph& g = ds.graph;
  EXPECT_EQ(g.num_nodes, 500);
  EXPECT_EQ(g.num_classes, 4);
  EXPECT_EQ(g.feature_dim(), 32);
  for (int64_t label : g.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
  // Edge count near 2 * n * avg_degree (undirected stored both ways).
  EXPECT_GT(g.num_edges(), 500 * 2 * 2);
  EXPECT_LT(g.num_edges(), 500 * 2 * 5);
}

TEST(CitationGeneratorTest, SplitsAreDisjointAndSized) {
  NodeDataset ds = CoraLike(7);
  const Graph& g = ds.graph;
  int64_t train = 0, val = 0, test = 0;
  for (int64_t i = 0; i < g.num_nodes; ++i) {
    const int m = g.train_mask[static_cast<size_t>(i)] +
                  g.val_mask[static_cast<size_t>(i)] +
                  g.test_mask[static_cast<size_t>(i)];
    EXPECT_LE(m, 1) << "masks overlap at node " << i;
    train += g.train_mask[static_cast<size_t>(i)];
    val += g.val_mask[static_cast<size_t>(i)];
    test += g.test_mask[static_cast<size_t>(i)];
  }
  EXPECT_EQ(train, 7 * 20);  // Planetoid: 20 per class
  EXPECT_EQ(val, 500);
  EXPECT_EQ(test, 1000);
}

TEST(CitationGeneratorTest, HomophilyIsPlanted) {
  NodeDataset ds = CoraLike(3);
  const Graph& g = ds.graph;
  int64_t same = 0;
  for (const auto& e : g.edges) {
    if (g.labels[static_cast<size_t>(e.row)] == g.labels[static_cast<size_t>(e.col)]) {
      ++same;
    }
  }
  const double ratio = static_cast<double>(same) / static_cast<double>(g.num_edges());
  EXPECT_GT(ratio, 0.6);  // config targets 0.81 minus collision losses
}

TEST(CitationGeneratorTest, EdgesAreSymmetricNoSelfLoops) {
  NodeDataset ds = CiteSeerLike(5);
  std::set<std::pair<int64_t, int64_t>> edges;
  for (const auto& e : ds.graph.edges) {
    EXPECT_NE(e.row, e.col);
    edges.insert({e.row, e.col});
  }
  for (const auto& [a, b] : edges) {
    EXPECT_TRUE(edges.count({b, a})) << "missing reverse edge " << b << "->" << a;
  }
}

TEST(CitationGeneratorTest, DeterministicPerSeed) {
  NodeDataset a = CoraLike(11), b = CoraLike(11), c = CoraLike(12);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.graph.labels, b.graph.labels);
  EXPECT_NE(a.graph.labels, c.graph.labels);
}

TEST(CitationGeneratorTest, FeaturesRowNormalized) {
  NodeDataset ds = PubMedLike(1);
  const Graph& g = ds.graph;
  for (int64_t i = 0; i < std::min<int64_t>(g.num_nodes, 200); ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < g.feature_dim(); ++j) s += g.features.at(i, j);
    if (s > 0.0) {
      EXPECT_NEAR(s, 1.0, 1e-4);
    }
  }
}

TEST(MultiLabelGeneratorTest, LabelMatrixDefined) {
  NodeDataset ds = OgbProteinsLike(1);
  EXPECT_EQ(ds.metric, "rocauc");
  ASSERT_TRUE(ds.graph.label_matrix.defined());
  EXPECT_EQ(ds.graph.label_matrix.rows(), ds.graph.num_nodes);
  EXPECT_EQ(ds.graph.label_matrix.cols(), 32);
  // Labels are 0/1.
  for (float v : ds.graph.label_matrix.data()) {
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
}

TEST(TuGeneratorTest, BalancedClassesAndStats) {
  TuConfig c;
  c.num_graphs = 60;
  c.num_classes = 3;
  c.avg_nodes = 25.0;
  c.seed = 2;
  GraphDataset ds = GenerateTu(c);
  EXPECT_EQ(ds.graphs.size(), 60u);
  std::vector<int64_t> counts(3, 0);
  for (const auto& g : ds.graphs) {
    ASSERT_GE(g.graph_label, 0);
    ASSERT_LT(g.graph_label, 3);
    counts[static_cast<size_t>(g.graph_label)]++;
    EXPECT_GE(g.num_nodes, 5);
    EXPECT_TRUE(g.features.defined());
  }
  EXPECT_EQ(counts[0], 20);
  EXPECT_EQ(counts[1], 20);
  EXPECT_EQ(counts[2], 20);
  EXPECT_NEAR(ds.AverageNodes(), 25.0, 6.0);
}

TEST(TuGeneratorTest, DensitySignalOrdersClasses) {
  TuConfig c;
  c.num_graphs = 100;
  c.num_classes = 2;
  c.avg_nodes = 30.0;
  c.base_degree = 3.0;
  c.degree_step = 0.8;
  c.seed = 3;
  GraphDataset ds = GenerateTu(c);
  double deg0 = 0.0, deg1 = 0.0;
  int64_t n0 = 0, n1 = 0;
  for (const auto& g : ds.graphs) {
    const double d = static_cast<double>(g.num_edges()) / g.num_nodes;
    if (g.graph_label == 0) {
      deg0 += d;
      ++n0;
    } else {
      deg1 += d;
      ++n1;
    }
  }
  EXPECT_GT(deg1 / n1, deg0 / n0);  // class 1 denser by construction
}

TEST(DegreeOneHotTest, EncodesCappedDegree) {
  Graph g;
  g.num_nodes = 3;
  g.edges = {{0, 1, 1.0f}, {0, 2, 1.0f}, {1, 0, 1.0f}};
  SetDegreeOneHotFeatures(&g, 4);
  EXPECT_EQ(g.feature_dim(), 4);
  EXPECT_FLOAT_EQ(g.features.at(0, 2), 1.0f);  // in-degree 2
  EXPECT_FLOAT_EQ(g.features.at(1, 1), 1.0f);  // in-degree 1
  EXPECT_FLOAT_EQ(g.features.at(2, 0), 1.0f);  // in-degree 0
}

TEST(SampleNeighborsTest, CapsInDegree) {
  NodeDataset ds = CoraLike(1);
  Graph sampled = SampleNeighbors(ds.graph, 3, 99);
  auto deg = sampled.InDegrees();
  for (int64_t d : deg) EXPECT_LE(d, 3);
  EXPECT_LE(sampled.num_edges(), ds.graph.num_edges());
}

TEST(BatchTest, DisjointUnion) {
  TuConfig c;
  c.num_graphs = 6;
  c.avg_nodes = 10.0;
  c.num_classes = 2;
  c.seed = 1;
  GraphDataset ds = GenerateTu(c);
  GraphBatch b = MakeBatch(ds, {0, 2, 4});
  EXPECT_EQ(b.num_graphs, 3);
  int64_t expected_nodes = ds.graphs[0].num_nodes + ds.graphs[2].num_nodes +
                           ds.graphs[4].num_nodes;
  EXPECT_EQ(b.merged.num_nodes, expected_nodes);
  EXPECT_EQ(static_cast<int64_t>(b.batch.size()), expected_nodes);
  // No cross-graph edges.
  for (const auto& e : b.merged.edges) {
    EXPECT_EQ(b.batch[static_cast<size_t>(e.row)], b.batch[static_cast<size_t>(e.col)]);
  }
  // Labels preserved in order.
  EXPECT_EQ(b.graph_labels[0], ds.graphs[0].graph_label);
  EXPECT_EQ(b.graph_labels[2], ds.graphs[4].graph_label);
}

TEST(CslTest, GraphIsFourRegular) {
  Graph g = MakeCslGraph(41, 5, 3, 123);
  EXPECT_EQ(g.num_nodes, 41);
  EXPECT_EQ(g.graph_label, 3);
  auto deg = g.InDegrees();
  for (int64_t d : deg) EXPECT_EQ(d, 4);  // cycle(2) + skip(2)
  EXPECT_EQ(g.num_edges(), 41 * 4);
}

TEST(CslTest, DatasetHasCanonicalShape) {
  GraphDataset ds = MakeCslDataset(/*pe_dim=*/50, /*seed=*/1);
  EXPECT_EQ(ds.graphs.size(), 150u);
  EXPECT_EQ(ds.num_classes, 10);
  EXPECT_EQ(ds.feature_dim, 50);
  std::vector<int64_t> per_class(10, 0);
  for (const auto& g : ds.graphs) {
    per_class[static_cast<size_t>(g.graph_label)]++;
    EXPECT_EQ(g.num_nodes, 41);
    EXPECT_EQ(g.feature_dim(), 50);
  }
  for (int64_t c : per_class) EXPECT_EQ(c, 15);
}

TEST(CslTest, IsomorphicCopiesDiffer) {
  Graph a = MakeCslGraph(41, 2, 0, 1);
  Graph b = MakeCslGraph(41, 2, 0, 2);
  // Same degree sequence, different edge sets (node relabelling).
  std::set<std::pair<int64_t, int64_t>> ea, eb;
  for (const auto& e : a.edges) ea.insert({e.row, e.col});
  for (const auto& e : b.edges) eb.insert({e.row, e.col});
  EXPECT_EQ(ea.size(), eb.size());
  EXPECT_NE(ea, eb);
}

TEST(JacobiTest, DiagonalizesKnownMatrix) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  auto eig = JacobiEigenSymmetric({2, 1, 1, 2}, 2);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-9);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-9);
  // Eigenvector for λ=1 is ±(1,-1)/√2.
  const double v0 = eig.eigenvectors[0], v1 = eig.eigenvectors[2];
  EXPECT_NEAR(std::fabs(v0), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(v0, -v1, 1e-8);
}

TEST(JacobiTest, ReconstructsRandomSymmetric) {
  Rng rng(4);
  const int64_t n = 8;
  std::vector<double> m(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      const double v = rng.Uniform(-1.0f, 1.0f);
      m[static_cast<size_t>(i * n + j)] = v;
      m[static_cast<size_t>(j * n + i)] = v;
    }
  }
  auto eig = JacobiEigenSymmetric(m, n);
  // Check A v_k = λ_k v_k for every eigenpair.
  for (int64_t k = 0; k < n; ++k) {
    for (int64_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        av += m[static_cast<size_t>(i * n + j)] *
              eig.eigenvectors[static_cast<size_t>(j * n + k)];
      }
      EXPECT_NEAR(av, eig.eigenvalues[static_cast<size_t>(k)] *
                          eig.eigenvectors[static_cast<size_t>(i * n + k)],
                  1e-7);
    }
  }
}

TEST(LaplacianPeTest, EncodingIsBoundedAndNonTrivial) {
  Graph g = MakeCslGraph(41, 3, 1, 5);
  Rng rng(6);
  SetLaplacianPositionalEncoding(&g, 50, &rng);
  EXPECT_EQ(g.feature_dim(), 50);
  double norm = 0.0;
  for (float v : g.features.data()) {
    EXPECT_LE(std::fabs(v), 1.001f);  // eigenvector entries
    norm += static_cast<double>(v) * v;
  }
  EXPECT_GT(norm, 1.0);  // 40 unit-norm eigenvectors present
  // Columns beyond n-1 are zero padding.
  for (int64_t i = 0; i < g.num_nodes; ++i) {
    for (int64_t j = 40; j < 50; ++j) EXPECT_FLOAT_EQ(g.features.at(i, j), 0.0f);
  }
}

TEST(LaplacianTest, NormalizedLaplacianDiagonalIsOne) {
  Graph g = MakeCslGraph(11, 2, 0, 1);
  auto lap = NormalizedLaplacianDense(g);
  for (int64_t i = 0; i < g.num_nodes; ++i) {
    EXPECT_NEAR(lap[static_cast<size_t>(i * g.num_nodes + i)], 1.0, 1e-9);
  }
}

TEST(NamedDatasetsTest, Table2ShapesMatch) {
  EXPECT_EQ(CoraLike(1).graph.num_nodes, 2708);
  EXPECT_EQ(CoraLike(1).graph.num_classes, 7);
  EXPECT_EQ(CiteSeerLike(1).graph.num_nodes, 3327);
  EXPECT_EQ(CiteSeerLike(1).graph.num_classes, 6);
  EXPECT_EQ(PubMedLike(1).graph.num_classes, 3);
  EXPECT_EQ(ArxivLike(1).graph.num_classes, 40);
  EXPECT_EQ(IgbLike(1).graph.num_classes, 19);
}

}  // namespace
}  // namespace mixq
