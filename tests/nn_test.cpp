// Copyright 2026 MixQ-GNN Authors
// Tests for layers: Linear/MLP, GCN/GIN/SAGE convs, attention ops & convs.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "nn/attention_convs.h"
#include "nn/gcn_conv.h"
#include "nn/gin_conv.h"
#include "nn/linear.h"
#include "nn/sage_conv.h"
#include "quant/scheme.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace mixq {
namespace {

SparseOperatorPtr SmallGraphOp(bool gcn_norm) {
  // 4-node undirected cycle.
  std::vector<CooEntry> edges;
  for (int64_t i = 0; i < 4; ++i) {
    edges.push_back({i, (i + 1) % 4, 1.0f});
    edges.push_back({(i + 1) % 4, i, 1.0f});
  }
  CsrMatrix adj = CsrMatrix::FromCoo(4, 4, edges);
  return MakeOperator(gcn_norm ? GcnNormalize(adj) : adj);
}

NoQuantScheme* Fp32() {
  static NoQuantScheme scheme;
  return &scheme;
}

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(1);
  Linear lin(3, 5, "l", &rng, /*bias=*/true);
  Tensor x = Tensor::RandomUniform(Shape(7, 3), &rng, -1.0f, 1.0f);
  Tensor y = lin.Forward(x, Fp32());
  EXPECT_EQ(y.shape(), Shape(7, 5));
  EXPECT_EQ(lin.Parameters().size(), 2u);
}

TEST(LinearTest, GradientsFlowToWeightAndBias) {
  Rng rng(2);
  Linear lin(3, 2, "l", &rng);
  Tensor x = Tensor::RandomUniform(Shape(4, 3), &rng, -1.0f, 1.0f);
  Sum(lin.Forward(x, Fp32())).Backward();
  for (auto& p : lin.Parameters()) {
    ASSERT_FALSE(p.grad().empty());
  }
}

TEST(LinearTest, QuantizedPathUsesScheme) {
  Rng rng(3);
  Linear lin(4, 4, "l", &rng, /*bias=*/false);
  UniformQatScheme scheme(2);
  Tensor x = Tensor::RandomUniform(Shape(4, 4), &rng, -1.0f, 1.0f);
  lin.Forward(x, &scheme);
  EXPECT_DOUBLE_EQ(scheme.EffectiveBits("l/weight", 32.0), 2.0);
  EXPECT_DOUBLE_EQ(scheme.EffectiveBits("l/out", 32.0), 2.0);
}

TEST(MlpTest, TwoLayersWithBatchNorm) {
  Rng rng(4);
  Mlp mlp(3, 8, 2, "m", &rng, /*batch_norm=*/true);
  Tensor x = Tensor::RandomUniform(Shape(10, 3), &rng, -1.0f, 1.0f);
  mlp.SetTraining(true);
  Tensor y = mlp.Forward(x, Fp32());
  EXPECT_EQ(y.shape(), Shape(10, 2));
  // fc1 (w+b), fc2 (w+b), gamma, beta.
  EXPECT_EQ(mlp.Parameters().size(), 6u);
  mlp.SetTraining(false);
  Tensor ye = mlp.Forward(x, Fp32());
  EXPECT_EQ(ye.shape(), Shape(10, 2));
}

TEST(GcnConvTest, ForwardShapeAndComponents) {
  Rng rng(5);
  GcnConv conv(3, 6, "g0", &rng);
  auto op = SmallGraphOp(true);
  Tensor x = Tensor::RandomUniform(Shape(4, 3), &rng, -1.0f, 1.0f);
  UniformQatScheme scheme(8);
  Tensor y = conv.Forward(x, op, &scheme);
  EXPECT_EQ(y.shape(), Shape(4, 6));
  auto ids = scheme.ComponentIds();
  // weight, linear_out, adj, agg.
  EXPECT_EQ(ids.size(), 4u);
}

TEST(GcnConvTest, Fp32FastPathKeepsExactSpmm) {
  Rng rng(6);
  GcnConv conv(3, 3, "g0", &rng);
  auto op = SmallGraphOp(true);
  Tensor x = Tensor::RandomUniform(Shape(4, 3), &rng, -1.0f, 1.0f);
  Tensor y = conv.Forward(x, op, Fp32());
  // Manual reference: Â (X Θ).
  Tensor ref = Spmm(op, MatMul(x, conv.Parameters()[0]));
  for (size_t i = 0; i < y.data().size(); ++i) {
    EXPECT_NEAR(y.data()[i], ref.data()[i], 1e-5);
  }
}

TEST(GcnConvTest, BackwardReachesWeights) {
  Rng rng(7);
  GcnConv conv(3, 2, "g0", &rng);
  auto op = SmallGraphOp(true);
  Tensor x = Tensor::RandomUniform(Shape(4, 3), &rng, -1.0f, 1.0f);
  Sum(conv.Forward(x, op, Fp32())).Backward();
  EXPECT_FALSE(conv.Parameters()[0].grad().empty());
}

TEST(GinConvTest, EpsilonCombinesSelfAndNeighbors) {
  Rng rng(8);
  GinConv conv(2, 4, 4, "gin0", &rng, /*batch_norm=*/false);
  auto op = SmallGraphOp(false);
  Tensor x = Tensor::RandomUniform(Shape(4, 2), &rng, -1.0f, 1.0f);
  Tensor y = conv.Forward(x, op, Fp32());
  EXPECT_EQ(y.shape(), Shape(4, 4));
  EXPECT_FLOAT_EQ(conv.epsilon(), 0.0f);
  Sum(y).Backward();
  // ε is learnable: must receive gradient.
  EXPECT_FALSE(conv.Parameters()[0].grad().empty());
}

TEST(SageConvTest, RootPlusNeighborDecomposition) {
  Rng rng(9);
  SageConv conv(3, 2, "s0", &rng);
  std::vector<CooEntry> edges = {{0, 1, 1.0f}};  // node 0 has one in-neighbor
  CsrMatrix adj = CsrMatrix::FromCoo(2, 2, edges);
  auto op = MakeOperator(RowNormalize(adj));
  Tensor x = Tensor::RandomUniform(Shape(2, 3), &rng, -1.0f, 1.0f);
  Tensor y = conv.Forward(x, op, Fp32());
  EXPECT_EQ(y.shape(), Shape(2, 2));
  // Node 1 has no in-edges: output = root transform only (plus bias).
  Sum(y).Backward();
  EXPECT_FALSE(conv.Parameters()[0].grad().empty());
}

TEST(AttentionOpsTest, GatAggregateRowsAreConvexCombinations) {
  auto op = SmallGraphOp(false);
  Rng rng(10);
  Tensor s = Tensor::Zeros(Shape(4));
  Tensor t = Tensor::Zeros(Shape(4));
  Tensor z = Tensor::RandomUniform(Shape(4, 3), &rng, 0.0f, 1.0f);
  Tensor y = GatAggregate(op, s, t, z);
  // Uniform attention (all logits equal): y_i = mean of neighbors.
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      const float expect =
          0.5f * (z.at((i + 1) % 4, j) + z.at((i + 3) % 4, j));
      EXPECT_NEAR(y.at(i, j), expect, 1e-5);
    }
  }
}

TEST(AttentionOpsTest, GatGradients) {
  auto op = SmallGraphOp(false);
  Rng rng(11);
  Tensor s = Tensor::RandomUniform(Shape(4), &rng, -0.5f, 0.5f);
  Tensor t = Tensor::RandomUniform(Shape(4), &rng, -0.5f, 0.5f);
  Tensor z = Tensor::RandomUniform(Shape(4, 3), &rng, -1.0f, 1.0f);
  s.SetRequiresGrad(true);
  t.SetRequiresGrad(true);
  auto loss = [&] { return Sum(Mul(GatAggregate(op, s, t, z),
                                   GatAggregate(op, s, t, z))); };
  EXPECT_TRUE(CheckGradient(z, loss).ok());
  EXPECT_TRUE(CheckGradient(s, loss).ok());
  EXPECT_TRUE(CheckGradient(t, loss).ok());
}

TEST(AttentionOpsTest, DotAttentionGradients) {
  auto op = SmallGraphOp(false);
  Rng rng(12);
  Tensor q = Tensor::RandomUniform(Shape(4, 3), &rng, -1.0f, 1.0f);
  Tensor k = Tensor::RandomUniform(Shape(4, 3), &rng, -1.0f, 1.0f);
  Tensor v = Tensor::RandomUniform(Shape(4, 2), &rng, -1.0f, 1.0f);
  k.SetRequiresGrad(true);
  v.SetRequiresGrad(true);
  auto loss = [&] {
    Tensor y = DotAttentionAggregate(op, q, k, v, 0.57f);
    return Sum(Mul(y, y));
  };
  EXPECT_TRUE(CheckGradient(q, loss).ok());
  EXPECT_TRUE(CheckGradient(k, loss).ok());
  EXPECT_TRUE(CheckGradient(v, loss).ok());
}

TEST(AttentionOpsTest, EmptyRowsYieldZeros) {
  CsrMatrix adj = CsrMatrix::FromCoo(3, 3, {{0, 1, 1.0f}});  // rows 1,2 empty
  auto op = MakeOperator(adj);
  Rng rng(13);
  Tensor s = Tensor::Zeros(Shape(3));
  Tensor t = Tensor::Zeros(Shape(3));
  Tensor z = Tensor::RandomUniform(Shape(3, 2), &rng, 1.0f, 2.0f);
  Tensor y = GatAggregate(op, s, t, z);
  EXPECT_FLOAT_EQ(y.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(2, 1), 0.0f);
  EXPECT_GT(y.at(0, 0), 0.0f);
}

TEST(AttentionConvsTest, AllVariantsForwardAndBackward) {
  Rng rng(14);
  auto raw = SmallGraphOp(false);
  auto gcn = SmallGraphOp(true);
  Tensor x = Tensor::RandomUniform(Shape(4, 3), &rng, -1.0f, 1.0f);

  GatConv gat(3, 5, "gat", &rng);
  Sum(gat.Forward(x, raw)).Backward();
  for (auto& p : gat.Parameters()) EXPECT_FALSE(p.grad().empty());

  TransformerConv tf(3, 5, "tf", &rng);
  Sum(tf.Forward(x, raw)).Backward();
  for (auto& p : tf.Parameters()) EXPECT_FALSE(p.grad().empty());

  SuperGatConv sg(3, 5, "sg", &rng);
  Sum(sg.Forward(x, raw)).Backward();
  for (auto& p : sg.Parameters()) EXPECT_FALSE(p.grad().empty());

  TagConv tag(3, 5, 2, "tag", &rng);
  Tensor y = tag.Forward(x, gcn);
  EXPECT_EQ(y.shape(), Shape(4, 5));
  EXPECT_EQ(tag.Parameters().size(), 3u);  // K+1 weights
  Sum(y).Backward();
  for (auto& p : tag.Parameters()) EXPECT_FALSE(p.grad().empty());
}

}  // namespace
}  // namespace mixq
