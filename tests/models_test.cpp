// Copyright 2026 MixQ-GNN Authors
// Tests for the full network architectures and their BitOPs accounting.
#include <gtest/gtest.h>

#include "graph/csl.h"
#include "graph/generators.h"
#include "nn/models.h"
#include "quant/scheme.h"
#include "tensor/ops.h"

namespace mixq {
namespace {

NodeDataset TinyCitation(uint64_t seed = 1) {
  CitationConfig c;
  c.num_nodes = 40;
  c.num_classes = 3;
  c.feature_dim = 8;
  c.avg_degree = 2.0;
  c.train_per_class = 5;
  c.val_count = 10;
  c.test_count = 10;
  c.seed = seed;
  return GenerateCitation(c);
}

TEST(GcnNetTest, PaperComponentCount) {
  // A 2-layer GCN exposes exactly the paper's 9 components (Fig. 2).
  Rng rng(1);
  GcnNet net({8, 16, 3, 2, 0.0f}, &rng);
  auto ids = net.ComponentIds();
  EXPECT_EQ(ids.size(), 9u);
  EXPECT_EQ(ids[0], "model/x");
  EXPECT_EQ(ids[1], "gcn0/weight");
  EXPECT_EQ(ids[4], "gcn0/agg");
  EXPECT_EQ(ids[8], "gcn1/agg");
}

TEST(GcnNetTest, ForwardShapeAndBackward) {
  NodeDataset ds = TinyCitation();
  Rng rng(2), drop(3);
  GcnNet net({ds.graph.feature_dim(), 16, ds.graph.num_classes, 2, 0.5f}, &rng);
  auto op = MakeOperator(GcnNormalize(ds.graph.Adjacency()));
  NoQuantScheme fp32;
  Tensor logits = net.Forward(ds.graph.features, op, &fp32, &drop);
  EXPECT_EQ(logits.shape(), Shape(40, 3));
  Sum(logits).Backward();
  for (auto& p : net.Parameters()) EXPECT_FALSE(p.grad().empty());
}

TEST(GcnNetTest, BitOpsClosedFormFp32) {
  // 2-layer GCN, n nodes, m nnz, f->h->c: ops =
  // 2nfh + 2mh + nh (relu) + 2nhc + 2mc, all at 32 bits.
  Rng rng(3);
  const int64_t n = 100, m = 500, f = 32, h = 64, c = 7;
  GcnNet net({f, h, c, 2, 0.0f}, &rng);
  NoQuantScheme fp32;
  BitOpsReport report = net.ComputeBitOps(n, m, fp32);
  const double expected_ops = 2.0 * n * f * h + 2.0 * m * h + n * h +
                              2.0 * n * h * c + 2.0 * m * c;
  EXPECT_DOUBLE_EQ(report.TotalOps(), expected_ops);
  EXPECT_DOUBLE_EQ(report.AverageBits(), 32.0);
  EXPECT_DOUBLE_EQ(report.TotalBitOps(), expected_ops * 32.0);
}

TEST(GcnNetTest, BitOpsScalesWithAssignedBits) {
  Rng rng(4);
  GcnNet net({32, 64, 7, 2, 0.0f}, &rng);
  NoQuantScheme fp32;
  // INT8-everywhere must be exactly 4x cheaper than FP32 (paper Table 3:
  // DQ-INT8 = FP32 / 4).
  UniformQatScheme int8(8);
  // Touch every component so EffectiveBits resolves.
  NodeDataset ds = TinyCitation();
  auto op = MakeOperator(GcnNormalize(ds.graph.Adjacency()));
  Rng rng2(5), drop(6);
  GcnNet net2({ds.graph.feature_dim(), 64, ds.graph.num_classes, 2, 0.0f}, &rng2);
  net2.Forward(ds.graph.features, op, &int8, &drop);
  BitOpsReport r32 = net2.ComputeBitOps(100, 500, fp32);
  BitOpsReport r8 = net2.ComputeBitOps(100, 500, int8);
  EXPECT_NEAR(r32.TotalBitOps() / r8.TotalBitOps(), 4.0, 1e-9);
}

TEST(GcnNetTest, CoraScaleFp32MatchesPaperOrder) {
  // Paper: 2-layer GCN on Cora (hidden 64) = 16.11 GBitOPs. With our reduced
  // feature dim (256 vs 1433) the dominant term shrinks ~5.6x; check the
  // formula reproduces the paper number when fed the original sizes.
  Rng rng(5);
  GcnNet net({1433, 64, 7, 2, 0.0f}, &rng);
  NoQuantScheme fp32;
  // Cora: 2708 nodes; Â has |E| + n = 10556 + 2708 = 13264 stored entries.
  BitOpsReport report = net.ComputeBitOps(2708, 13264, fp32);
  EXPECT_NEAR(report.GigaBitOps(), 16.11, 0.8);
}

TEST(SageNetTest, ComponentIdsAndForward) {
  NodeDataset ds = TinyCitation(2);
  Rng rng(6), drop(7);
  SageNet net({ds.graph.feature_dim(), 16, ds.graph.num_classes, 2, 0.0f}, &rng);
  EXPECT_EQ(net.ComponentIds().size(), 1u + 2u * 7u);
  auto op = MakeOperator(RowNormalize(ds.graph.Adjacency()));
  NoQuantScheme fp32;
  Tensor logits = net.Forward(ds.graph.features, op, &fp32, &drop);
  EXPECT_EQ(logits.shape(), Shape(40, 3));
  BitOpsReport r = net.ComputeBitOps(40, op->nnz(), fp32);
  EXPECT_GT(r.TotalOps(), 0.0);
}

TEST(GinGraphNetTest, ForwardOnBatch) {
  TuConfig c;
  c.num_graphs = 8;
  c.avg_nodes = 12.0;
  c.num_classes = 2;
  c.seed = 3;
  GraphDataset ds = GenerateTu(c);
  GraphBatch batch = MakeBatch(ds, {0, 1, 2, 3});
  Rng rng(8);
  GinGraphNet net({ds.feature_dim, 16, 2, 3, true}, &rng);
  auto op = MakeOperator(batch.merged.Adjacency());
  NoQuantScheme fp32;
  net.SetTraining(true);
  Tensor logits =
      net.Forward(batch.merged.features, op, batch.batch, batch.num_graphs, &fp32);
  EXPECT_EQ(logits.shape(), Shape(4, 2));
  Sum(logits).Backward();
  int with_grad = 0;
  for (auto& p : net.Parameters()) with_grad += p.grad().empty() ? 0 : 1;
  EXPECT_GT(with_grad, 5);
}

TEST(GinGraphNetTest, ComponentIdsCoverLayersAndHead) {
  Rng rng(9);
  GinGraphNet net({8, 16, 2, 5, true}, &rng);
  auto ids = net.ComponentIds();
  // 1 (x) + 5*7 + 1 (pool) + 4 (head) = 41.
  EXPECT_EQ(ids.size(), 41u);
}

TEST(GcnGraphNetTest, CslShapedForward) {
  GraphDataset csl = MakeCslDataset(/*pe_dim=*/10, /*seed=*/1);
  GraphBatch batch = MakeBatch(csl, {0, 15, 30});
  Rng rng(10);
  GcnGraphNet net({10, 16, 10, 4}, &rng);
  auto op = MakeOperator(GcnNormalize(batch.merged.Adjacency()));
  NoQuantScheme fp32;
  Tensor logits =
      net.Forward(batch.merged.features, op, batch.batch, batch.num_graphs, &fp32);
  EXPECT_EQ(logits.shape(), Shape(3, 10));
  BitOpsReport r = net.ComputeBitOps(batch.merged.num_nodes, op->nnz(), 3, fp32);
  EXPECT_GT(r.GigaBitOps(), 0.0);
}

TEST(Fp32StackNetTest, AllSixTypesTrainable) {
  NodeDataset ds = TinyCitation(3);
  auto gcn_op = MakeOperator(GcnNormalize(ds.graph.Adjacency()));
  auto raw_op = MakeOperator(ds.graph.Adjacency());
  using LT = Fp32StackNet::LayerType;
  for (LT type : {LT::kGcn, LT::kGat, LT::kGin, LT::kTransformer, LT::kTag,
                  LT::kSuperGat}) {
    Rng rng(20 + static_cast<int>(type)), drop(30);
    Fp32StackNet net(type, ds.graph.feature_dim(), 8, ds.graph.num_classes, 2, &rng);
    Tensor logits = net.Forward(ds.graph.features, gcn_op, raw_op, &drop);
    EXPECT_EQ(logits.shape(), Shape(40, 3)) << Fp32StackNet::LayerTypeName(type);
    Sum(logits).Backward();
    EXPECT_GT(net.ParameterCount(), 0);
    EXPECT_GT(net.CountOps(40, raw_op->nnz()), 0.0);
  }
}

TEST(Fp32StackNetTest, OpsGrowWithDepth) {
  Rng rng(11);
  Fp32StackNet a(Fp32StackNet::LayerType::kGcn, 16, 8, 3, 1, &rng);
  Rng rng2(11);
  Fp32StackNet b(Fp32StackNet::LayerType::kGcn, 16, 8, 3, 4, &rng2);
  EXPECT_GT(b.CountOps(100, 400), a.CountOps(100, 400));
  EXPECT_GT(b.ParameterCount(), a.ParameterCount());
}

}  // namespace
}  // namespace mixq
