// Copyright 2026 MixQ-GNN Authors
// Property-based / parameterized sweeps over invariants that must hold for
// every configuration: quantization error bounds, idempotence, Theorem-1
// exactness across graph shapes, Pareto dominance, GCN operator spectra.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/stats.h"
#include "quant/fused_mp.h"
#include "quant/quant_params.h"
#include "sparse/csr.h"

namespace mixq {
namespace {

// ---- Quantization invariants across (bits, symmetric, range) ----------------

class QuantInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, bool, float>> {};

TEST_P(QuantInvariantTest, ErrorBoundedIdempotentMonotone) {
  const auto [bits, symmetric, range] = GetParam();
  QuantParams p = ParamsFromRange(-range, range, bits, symmetric);
  Rng rng(1000 + bits);
  for (int i = 0; i < 300; ++i) {
    const float x = rng.Uniform(-range, range);
    const float q = FakeQuantValue(x, p);
    // 1. Error bound within the representable range.
    EXPECT_LE(std::fabs(q - x), p.scale * 0.5f + 1e-5f) << "bits=" << bits;
    // 2. Idempotence: quantizing a grid point is exact.
    EXPECT_NEAR(FakeQuantValue(q, p), q, 1e-6f);
    // 3. Monotonicity: x1 <= x2 => Q(x1) <= Q(x2).
    const float x2 = rng.Uniform(-range, range);
    if (x <= x2) {
      EXPECT_LE(FakeQuantValue(x, p), FakeQuantValue(x2, p) + 1e-6f);
    }
  }
  // 4. Out-of-range values clamp to the representable extremes.
  const float top = FakeQuantValue(10.0f * range, p);
  const float bot = FakeQuantValue(-10.0f * range, p);
  EXPECT_NEAR(top, static_cast<float>(p.qmax() - p.zero_point) * p.scale, 1e-5f);
  EXPECT_NEAR(bot, static_cast<float>(p.qmin() - p.zero_point) * p.scale, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantInvariantTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8, 16),
                       ::testing::Bool(),
                       ::testing::Values(0.5f, 1.0f, 8.0f)),
    [](const auto& info) {
      return "b" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "sym" : "asym") + "r" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
    });

// ---- Theorem 1 across graph shapes and densities -----------------------------

class FusedShapeTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, double>> {};

TEST_P(FusedShapeTest, FusedEqualsReferenceEverywhere) {
  const auto [n, f, density] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 131 + f));
  std::vector<CooEntry> entries;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (rng.Bernoulli(density)) entries.push_back({i, j, rng.Uniform(-1.0f, 1.0f)});
    }
  }
  if (entries.empty()) entries.push_back({0, 0, 0.5f});
  CsrMatrix a = CsrMatrix::FromCoo(n, n, entries);
  Tensor x = Tensor::RandomUniform(Shape(n, f), &rng, -2.0f, 2.0f);
  QuantParams pa = ParamsFromRange(-1.0f, 1.0f, 8, true);
  QuantParams px = ParamsFromRange(-2.0f, 2.0f, 4, false);
  QuantParams py = ParamsFromRange(-10.0f, 10.0f, 16, true);
  QuantizedSparse qa = QuantizeCsr(a, pa);
  QuantizedDense qx = QuantizeDense(x, px);
  QuantizedDense fused = FusedQuantizedSpmm(a, qa, qx, py);
  QuantizedDense ref = ReferenceQuantizedSpmm(a, qa, qx, py);
  ASSERT_EQ(fused.q.size(), ref.q.size());
  for (size_t i = 0; i < fused.q.size(); ++i) {
    EXPECT_LE(std::abs(fused.q[i] - ref.q[i]), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FusedShapeTest,
                         ::testing::Values(std::make_tuple<int64_t, int64_t>(1, 1, 1.0),
                                           std::make_tuple<int64_t, int64_t>(5, 3, 0.5),
                                           std::make_tuple<int64_t, int64_t>(17, 9, 0.2),
                                           std::make_tuple<int64_t, int64_t>(40, 16, 0.05),
                                           std::make_tuple<int64_t, int64_t>(64, 1, 0.1)));

// ---- Pareto front dominance ---------------------------------------------------

TEST(ParetoPropertyTest, NoFrontPointIsDominated) {
  Rng rng(77);
  std::vector<ParetoPoint> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.Uniform(2.0f, 8.0f), rng.Uniform(0.2f, 0.9f), i});
  }
  auto front = ParetoFront(pts);
  ASSERT_FALSE(front.empty());
  for (const auto& fp : front) {
    for (const auto& p : pts) {
      const bool dominates =
          (p.cost < fp.cost && p.gain >= fp.gain) ||
          (p.cost <= fp.cost && p.gain > fp.gain);
      EXPECT_FALSE(dominates) << "front point " << fp.tag << " dominated by "
                              << p.tag;
    }
  }
  // Front is sorted by cost and strictly increasing in gain.
  for (size_t i = 1; i < front.size(); ++i) {
    EXPECT_LE(front[i - 1].cost, front[i].cost);
    EXPECT_LT(front[i - 1].gain, front[i].gain);
  }
}

// ---- GCN normalization spectrum ----------------------------------------------

TEST(GcnOperatorPropertyTest, SpectralRadiusAtMostOne) {
  // For Â = D^{-1/2}(I+A)D^{-1/2} with the renormalization-trick degrees,
  // the spectrum lies in [-1, 1]: aggregation cannot amplify feature norms.
  // Verified by power iteration on random undirected graphs.
  Rng rng(88);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t n = 20;
    std::vector<CooEntry> entries;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.2)) {
          entries.push_back({i, j, 1.0f});
          entries.push_back({j, i, 1.0f});
        }
      }
    }
    CsrMatrix norm = GcnNormalize(CsrMatrix::FromCoo(n, n, entries));
    std::vector<float> v(static_cast<size_t>(n));
    for (auto& x : v) x = rng.Uniform(-1.0f, 1.0f);
    std::vector<float> w(static_cast<size_t>(n));
    double lambda_est = 0.0;
    for (int it = 0; it < 200; ++it) {
      SpmmRaw(norm, v.data(), 1, w.data());
      double nv = 0.0, nw = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        nv += static_cast<double>(v[static_cast<size_t>(i)]) * v[static_cast<size_t>(i)];
        nw += static_cast<double>(w[static_cast<size_t>(i)]) * w[static_cast<size_t>(i)];
      }
      lambda_est = std::sqrt(nw / std::max(nv, 1e-30));
      const double inv = 1.0 / std::max(std::sqrt(nw), 1e-30);
      for (int64_t i = 0; i < n; ++i) {
        v[static_cast<size_t>(i)] = static_cast<float>(w[static_cast<size_t>(i)] * inv);
      }
    }
    EXPECT_LE(lambda_est, 1.0 + 1e-3) << "trial " << trial;
  }
}

// ---- Requantization chain property --------------------------------------------

TEST(RequantChainTest, CoarserNeverMorePrecise) {
  // Quantizing at b1 then measuring error must never beat direct error at a
  // finer b2 > b1 by more than numerical noise, over many random draws.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const float range = rng.Uniform(0.5f, 4.0f);
    QuantParams p2 = ParamsFromRange(-range, range, 2, true);
    QuantParams p8 = ParamsFromRange(-range, range, 8, true);
    double e2 = 0.0, e8 = 0.0;
    for (int i = 0; i < 100; ++i) {
      const float x = rng.Uniform(-range, range);
      e2 += std::fabs(FakeQuantValue(x, p2) - x);
      e8 += std::fabs(FakeQuantValue(x, p8) - x);
    }
    EXPECT_GE(e2, e8);
  }
}

}  // namespace
}  // namespace mixq
