// Copyright 2026 MixQ-GNN Authors
// End-to-end node-classification integration tests: the full pipelines that
// back Tables 3-7, on reduced-size datasets so they run in seconds.
#include <gtest/gtest.h>

#include "core/pipelines.h"

namespace mixq {
namespace {

NodeDataset SmallCitation(uint64_t seed) {
  CitationConfig c;
  c.name = "small-citation";
  c.num_nodes = 300;
  c.num_classes = 4;
  c.feature_dim = 32;
  c.avg_degree = 3.0;
  c.homophily = 0.85;
  c.train_per_class = 15;
  c.val_count = 60;
  c.test_count = 120;
  c.seed = seed;
  return GenerateCitation(c);
}

NodeExperimentConfig SmallConfig(NodeModelKind model = NodeModelKind::kGcn) {
  NodeExperimentConfig cfg;
  cfg.model = model;
  cfg.hidden = 16;
  cfg.num_layers = 2;
  cfg.dropout = 0.3f;
  cfg.train.epochs = 60;
  cfg.train.lr = 0.05f;
  return cfg;
}

TEST(NodeIntegration, Fp32GcnLearnsHomophilousGraph) {
  ExperimentResult res =
      RunNodeExperiment(SmallCitation(1), SmallConfig(), SchemeSpec::Fp32());
  EXPECT_GT(res.test_metric, 0.6) << "FP32 GCN failed to learn";
  EXPECT_DOUBLE_EQ(res.avg_bits, 32.0);
  EXPECT_GT(res.gbitops, 0.0);
  EXPECT_GT(res.model_param_count, 0);
}

TEST(NodeIntegration, Int8QatTracksFp32) {
  ExperimentResult fp32 =
      RunNodeExperiment(SmallCitation(2), SmallConfig(), SchemeSpec::Fp32());
  ExperimentResult int8 =
      RunNodeExperiment(SmallCitation(2), SmallConfig(), SchemeSpec::Qat(8));
  EXPECT_GT(int8.test_metric, fp32.test_metric - 0.12);
  EXPECT_NEAR(int8.avg_bits, 8.0, 0.5);
  EXPECT_LT(int8.gbitops, fp32.gbitops / 3.0);
}

TEST(NodeIntegration, DegreeQuantRuns) {
  ExperimentResult dq =
      RunNodeExperiment(SmallCitation(3), SmallConfig(), SchemeSpec::Dq(4));
  EXPECT_GT(dq.test_metric, 0.3);
  EXPECT_NEAR(dq.avg_bits, 4.0, 0.5);
}

TEST(NodeIntegration, A2qLearnsWithPerNodeBits) {
  SchemeSpec spec = SchemeSpec::A2q();
  spec.a2q_memory_lambda = 1e-3;
  ExperimentResult a2q = RunNodeExperiment(SmallCitation(4), SmallConfig(), spec);
  EXPECT_GT(a2q.test_metric, 0.4);
  EXPECT_LT(a2q.avg_bits, 8.5);     // learnable bits moved below the max
  EXPECT_GT(a2q.quant_param_count, 0);
  // A2Q's overhead: 2 params per node per component (Table 1's criticism).
  EXPECT_GE(a2q.quant_param_count, 2 * 300);
}

TEST(NodeIntegration, MixQSearchSelectsAndTrains) {
  SchemeSpec spec = SchemeSpec::MixQ(/*lambda=*/0.1);
  spec.search_epochs = 25;
  ExperimentResult res = RunNodeExperiment(SmallCitation(5), SmallConfig(), spec);
  // 2-layer GCN: 9 components, all assigned a searched width.
  EXPECT_EQ(res.selected_bits.size(), 9u);
  for (const auto& [id, b] : res.selected_bits) {
    EXPECT_TRUE(b == 2 || b == 4 || b == 8) << id << "=" << b;
  }
  EXPECT_GT(res.test_metric, 0.4);
  EXPECT_LT(res.avg_bits, 32.0);
  EXPECT_GT(res.gbitops, 0.0);
}

TEST(NodeIntegration, MixQLambdaControlsBits) {
  // Stronger penalty => fewer average bits (Fig. 9's monotone trend).
  SchemeSpec gentle = SchemeSpec::MixQ(-1e-8);
  gentle.search_epochs = 25;
  SchemeSpec harsh = SchemeSpec::MixQ(5.0);
  harsh.search_epochs = 25;
  ExperimentResult g = RunNodeExperiment(SmallCitation(6), SmallConfig(), gentle);
  ExperimentResult h = RunNodeExperiment(SmallCitation(6), SmallConfig(), harsh);
  EXPECT_LE(h.avg_bits, g.avg_bits + 0.2);
}

TEST(NodeIntegration, MixQPlusDqIntegration) {
  SchemeSpec spec = SchemeSpec::MixQDq(0.1);
  spec.search_epochs = 20;
  ExperimentResult res = RunNodeExperiment(SmallCitation(7), SmallConfig(), spec);
  EXPECT_GT(res.test_metric, 0.4);
  EXPECT_FALSE(res.selected_bits.empty());
}

TEST(NodeIntegration, RandomBaselineTracksAssignment) {
  SchemeSpec spec;
  spec.kind = SchemeSpec::Kind::kRandom;
  spec.seed = 9;
  ExperimentResult res = RunNodeExperiment(SmallCitation(8), SmallConfig(), spec);
  EXPECT_EQ(res.selected_bits.size(), 9u);
  SchemeSpec spec8 = spec;
  spec8.kind = SchemeSpec::Kind::kRandomInt8;
  ExperimentResult res8 = RunNodeExperiment(SmallCitation(8), SmallConfig(), spec8);
  // Random+INT8 pins the prediction output (last component) to 8 bits.
  EXPECT_EQ(res8.selected_bits.at("gcn1/agg"), 8);
}

TEST(NodeIntegration, SageBackboneWithSampling) {
  NodeExperimentConfig cfg = SmallConfig(NodeModelKind::kSage);
  cfg.sample_max_degree = 5;
  ExperimentResult res =
      RunNodeExperiment(SmallCitation(10), cfg, SchemeSpec::Fp32());
  EXPECT_GT(res.test_metric, 0.5);
  SchemeSpec mixq = SchemeSpec::MixQ(0.1);
  mixq.search_epochs = 20;
  ExperimentResult qres = RunNodeExperiment(SmallCitation(10), cfg, mixq);
  EXPECT_EQ(qres.selected_bits.size(), 15u);  // 1 + 2*7 SAGE components
}

TEST(NodeIntegration, MultiLabelRocAucPath) {
  CitationConfig c;
  c.num_nodes = 250;
  c.num_classes = 4;
  c.feature_dim = 24;
  c.avg_degree = 4.0;
  c.train_per_class = 30;
  c.val_count = 50;
  c.test_count = 80;
  c.seed = 12;
  NodeDataset ds = GenerateMultiLabelCitation(c, /*num_tasks=*/8);
  NodeExperimentConfig cfg = SmallConfig(NodeModelKind::kSage);
  cfg.train.epochs = 40;
  ExperimentResult res = RunNodeExperiment(ds, cfg, SchemeSpec::Fp32());
  EXPECT_GT(res.test_metric, 0.55);  // ROC-AUC above chance
}

TEST(NodeIntegration, RepeatAggregatesStatistics) {
  auto make = [](uint64_t seed) { return SmallCitation(seed); };
  RepeatedResult agg =
      RepeatNodeExperiment(make, SmallConfig(), SchemeSpec::Qat(8), /*repeats=*/3);
  EXPECT_EQ(agg.runs.size(), 3u);
  EXPECT_GT(agg.mean_metric, 0.4);
  EXPECT_GE(agg.std_metric, 0.0);
  EXPECT_NEAR(agg.mean_bits, 8.0, 0.5);
}

TEST(NodeIntegration, SchemeLabels) {
  EXPECT_EQ(SchemeLabel(SchemeSpec::Fp32()), "FP32");
  EXPECT_EQ(SchemeLabel(SchemeSpec::Dq(4)), "DQ-INT4");
  EXPECT_EQ(SchemeLabel(SchemeSpec::A2q()), "A2Q");
  EXPECT_EQ(SchemeLabel(SchemeSpec::MixQ(1.0)), "MixQ(l=1)");
}

}  // namespace
}  // namespace mixq
