// Copyright 2026 MixQ-GNN Authors
// Tests for the open SchemeRegistry: typed parameter maps, built-in family
// round-trips, unknown-name errors, and third-party registration.
#include <gtest/gtest.h>

#include "core/pipelines.h"
#include "quant/scheme_registry.h"

namespace mixq {
namespace {

// A context rich enough for every built-in family.
SchemeBuildContext FullContext() {
  SchemeBuildContext ctx;
  ctx.component_ids = {"model/x", "gcn0/weight", "gcn0/agg", "gcn1/weight",
                       "gcn1/agg"};
  ctx.in_degrees = {1, 2, 3, 4, 5, 6, 7, 8};
  ctx.num_nodes = 8;
  ctx.seed = 3;
  ctx.selected_bits = {{"model/x", 4}, {"gcn0/weight", 2}, {"gcn1/agg", 8}};
  return ctx;
}

TEST(SchemeParamsTest, TypedGetters) {
  SchemeParams p;
  p.SetInt("bits", 4).SetDouble("lambda", 0.25).SetIntList("bit_options", {2, 4, 8});
  p.SetBitsMap("fixed_bits", {{"a/w", 4}, {"b/agg", 8}});

  EXPECT_EQ(p.GetInt("bits").ValueOrDie(), 4);
  EXPECT_DOUBLE_EQ(p.GetDouble("lambda").ValueOrDie(), 0.25);
  EXPECT_EQ(p.GetIntList("bit_options").ValueOrDie(),
            (std::vector<int>{2, 4, 8}));
  auto bits = p.GetBitsMap("fixed_bits").ValueOrDie();
  EXPECT_EQ(bits.at("a/w"), 4);
  EXPECT_EQ(bits.at("b/agg"), 8);
}

TEST(SchemeParamsTest, MissingAndMalformedKeys) {
  SchemeParams p;
  p.Set("bits", "four");
  EXPECT_EQ(p.GetInt("bits").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetInt("absent").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(p.GetIntOr("absent", 7), 7);
  p.Set("fixed_bits", "no-equals-sign");
  EXPECT_EQ(p.GetBitsMap("fixed_bits").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemeRegistryTest, EveryBuiltinConstructsByName) {
  const std::vector<std::string> builtins = {
      "fp32", "qat", "dq", "a2q", "mixq", "mixq_dq",
      "fixed", "random", "random_int8"};
  SchemeBuildContext ctx = FullContext();
  for (const std::string& name : builtins) {
    ASSERT_TRUE(SchemeRegistry::Global().Contains(name)) << name;
    SchemeRef ref(name);
    if (name == "fixed") ref.params.SetBitsMap("fixed_bits", {{"gcn0/weight", 4}});
    Result<QuantSchemePtr> scheme = SchemeRegistry::Global().Create(ref, ctx);
    ASSERT_TRUE(scheme.ok()) << name << ": " << scheme.status().ToString();
    EXPECT_NE(scheme.ValueOrDie(), nullptr) << name;
  }
}

TEST(SchemeRegistryTest, UnknownSchemeIsNotFound) {
  Result<SchemeFamilyPtr> family = SchemeRegistry::Global().Find("no-such-scheme");
  EXPECT_FALSE(family.ok());
  EXPECT_EQ(family.status().code(), StatusCode::kNotFound);

  Result<QuantSchemePtr> scheme =
      SchemeRegistry::Global().Create(SchemeRef("no-such-scheme"), FullContext());
  EXPECT_EQ(scheme.status().code(), StatusCode::kNotFound);
}

TEST(SchemeRegistryTest, DuplicateRegistrationRejected) {
  Status st = SchemeRegistry::Global().Register(
      "fp32", std::make_shared<const LambdaSchemeFamily>(
                  [](const SchemeParams&, const SchemeBuildContext&)
                      -> Result<QuantSchemePtr> {
                    return QuantSchemePtr(std::make_shared<NoQuantScheme>());
                  },
                  [](const SchemeParams&) { return std::string("dup"); }));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SchemeRegistryTest, ThirdPartyFamilyRegistersAndBuilds) {
  // The open-extension contract: a new strategy plugs in by name without
  // touching any core switch statement.
  auto family = std::make_shared<const LambdaSchemeFamily>(
      [](const SchemeParams& params, const SchemeBuildContext&)
          -> Result<QuantSchemePtr> {
        return QuantSchemePtr(std::make_shared<UniformQatScheme>(
            static_cast<int>(params.GetIntOr("bits", 6))));
      },
      [](const SchemeParams&) { return std::string("Custom"); });
  ASSERT_TRUE(SchemeRegistry::Global().Register("custom_test_scheme", family).ok());

  SchemeRef ref("custom_test_scheme");
  ref.params.SetInt("bits", 5);
  Result<QuantSchemePtr> scheme =
      SchemeRegistry::Global().Create(ref, SchemeBuildContext{});
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  EXPECT_EQ(SchemeRegistry::Global().Label(ref), "Custom");

  ASSERT_TRUE(SchemeRegistry::Global().Unregister("custom_test_scheme").ok());
  EXPECT_FALSE(SchemeRegistry::Global().Contains("custom_test_scheme"));
  EXPECT_EQ(SchemeRegistry::Global().Unregister("custom_test_scheme").code(),
            StatusCode::kNotFound);
}

TEST(SchemeRegistryTest, ParameterValidationSurfacesErrors) {
  SchemeBuildContext ctx = FullContext();

  SchemeRef bad_bits("qat");
  bad_bits.params.SetInt("bits", 0);
  EXPECT_EQ(SchemeRegistry::Global().Create(bad_bits, ctx).status().code(),
            StatusCode::kInvalidArgument);

  SchemeRef bad_options("mixq");
  bad_options.params.Set("bit_options", "");
  EXPECT_EQ(SchemeRegistry::Global().Create(bad_options, ctx).status().code(),
            StatusCode::kInvalidArgument);

  SchemeRef no_map("fixed");
  EXPECT_EQ(SchemeRegistry::Global().Create(no_map, ctx).status().code(),
            StatusCode::kNotFound);  // missing required fixed_bits parameter

  // Typo'd *optional* parameters must error, not silently fall back to the
  // family default.
  SchemeRef typo_a2q("a2q");
  typo_a2q.params.Set("memory_lambda", "0..005");
  EXPECT_EQ(SchemeRegistry::Global().Create(typo_a2q, ctx).status().code(),
            StatusCode::kInvalidArgument);
  SchemeRef typo_dq("dq");
  typo_dq.params.Set("p_max", "high");
  EXPECT_EQ(SchemeRegistry::Global().Create(typo_dq, ctx).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemeParamsTest, DoubleRoundTripIsLossless) {
  SchemeParams p;
  const double lambda = 0.012345678901234567;
  p.SetDouble("lambda", lambda);
  EXPECT_EQ(p.GetDouble("lambda").ValueOrDie(), lambda);  // bitwise
}

TEST(SchemeRegistryTest, ContextRequirementsEnforced) {
  SchemeBuildContext empty;

  // DQ needs degrees, A2Q needs a node count, random needs component ids,
  // mixq needs a completed search.
  EXPECT_EQ(SchemeRegistry::Global().Create(SchemeRef::Dq(4), empty).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SchemeRegistry::Global().Create(SchemeRef::A2q(), empty).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      SchemeRegistry::Global().Create(SchemeRef::Random(), empty).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      SchemeRegistry::Global().Create(SchemeRef::MixQ(0.1), empty).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(SchemeRegistryTest, RandomAssignmentIsSeededAndInt8PinsOutput) {
  SchemeBuildContext ctx = FullContext();
  auto a = SchemeRegistry::Global().Create(SchemeRef::Random({2, 4}), ctx);
  auto b = SchemeRegistry::Global().Create(SchemeRef::Random({2, 4}), ctx);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.ValueOrDie()->SelectedBits(), b.ValueOrDie()->SelectedBits());

  auto pinned = SchemeRegistry::Global().Create(SchemeRef::RandomInt8({2, 4}), ctx);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned.ValueOrDie()->SelectedBits().at(ctx.component_ids.back()), 8);
}

TEST(SchemeLabelTest, CoversEveryLegacyKind) {
  // Satellite check: every SchemeSpec::Kind maps to a distinct, non-"?"
  // label through the registry.
  std::vector<std::pair<SchemeSpec, std::string>> cases = {
      {SchemeSpec::Fp32(), "FP32"},
      {SchemeSpec::Qat(8), "QAT-INT8"},
      {SchemeSpec::Dq(4), "DQ-INT4"},
      {SchemeSpec::A2q(), "A2Q"},
      {SchemeSpec::MixQ(0.1), "MixQ(l=0.1)"},
      {SchemeSpec::MixQDq(0.1), "MixQ(l=0.1)+DQ"},
      {SchemeSpec::Fixed({{"a", 4}}), "Fixed"},
      {SchemeSpec::Random(), "Random"},
      {SchemeSpec::RandomInt8(), "Random+INT8"},
  };
  for (const auto& [spec, expected] : cases) {
    EXPECT_EQ(SchemeLabel(spec), expected);
    // And the new-API label agrees.
    EXPECT_EQ(SchemeLabel(spec.ToRef()), expected);
  }
}

TEST(SchemeRegistryTest, LegacySpecsRoundTripThroughToRef) {
  SchemeBuildContext ctx = FullContext();
  const std::vector<SchemeSpec> specs = {
      SchemeSpec::Fp32(),   SchemeSpec::Qat(4),
      SchemeSpec::Dq(8),    SchemeSpec::A2q(),
      SchemeSpec::MixQ(0.5), SchemeSpec::MixQDq(0.5),
      SchemeSpec::Fixed({{"gcn0/weight", 2}}),
      SchemeSpec::Random(), SchemeSpec::RandomInt8()};
  for (const SchemeSpec& spec : specs) {
    Result<QuantSchemePtr> scheme =
        SchemeRegistry::Global().Create(spec.ToRef(), ctx);
    ASSERT_TRUE(scheme.ok()) << SchemeLabel(spec) << ": "
                             << scheme.status().ToString();
  }
}

}  // namespace
}  // namespace mixq
