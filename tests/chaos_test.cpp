// Copyright 2026 MixQ-GNN Authors
// Chaos suite for the self-healing serving stack: drives seeded,
// deterministic fault schedules (common/fault_injection.h) through the full
// Submit path and asserts the failure-model invariant of DESIGN.md §7 —
// every submitted future resolves with a typed Status (no hangs, no
// abandoned promises, no crashed dispatcher), and the engine recovers once
// faults stop. Individual tests pin single sites (throwing forward, failed
// allocation, corrupt bundle, slow kernel, overload shed) to check each
// containment edge; the storm test replays whole seeded schedules. Under a
// MIXQ_FAULTS=seed:rate environment (the CI chaos job) the storm test runs
// that exact schedule, so a red seed reproduces locally with the same value.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "core/experiment.h"
#include "engine/inference_engine.h"
#include "engine/model_bundle.h"

namespace mixq {
namespace {

using engine::BatcherOptions;
using engine::CompileModel;
using engine::CompiledModelPtr;
using engine::InferenceEngine;
using engine::Precision;
using engine::PredictRequest;
using engine::PredictResponse;
using engine::ServingClock;

NodeDataset TinyCitation(uint64_t seed = 1) {
  CitationConfig c;
  c.name = "chaos-tiny";
  c.num_nodes = 160;
  c.num_classes = 3;
  c.feature_dim = 20;
  c.avg_degree = 3.0;
  c.homophily = 0.85;
  c.train_per_class = 8;
  c.val_count = 30;
  c.test_count = 60;
  c.seed = seed;
  return GenerateCitation(c);
}

std::shared_ptr<ModelArtifact> TrainArtifact(const SchemeRef& scheme,
                                             uint64_t seed = 1) {
  NodeExperimentConfig cfg;
  cfg.hidden = 12;
  cfg.num_layers = 2;
  cfg.dropout = 0.2f;
  cfg.train.epochs = 12;
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(TinyCitation(seed), cfg, scheme);
  spec.seed = seed;
  spec.keep_artifact = true;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  EXPECT_TRUE(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ValueOrDie().artifact;
}

// Artifacts are immutable once trained; train each kind once for the suite.
const std::shared_ptr<ModelArtifact>& Qat8Artifact() {
  static const auto artifact =
      new std::shared_ptr<ModelArtifact>(TrainArtifact(SchemeRef::Qat(8)));
  return *artifact;
}
const std::shared_ptr<ModelArtifact>& Fp32Artifact() {
  static const auto artifact =
      new std::shared_ptr<ModelArtifact>(TrainArtifact(SchemeRef::Fp32()));
  return *artifact;
}
const std::shared_ptr<ModelArtifact>& A2qArtifact() {
  static const auto artifact =
      new std::shared_ptr<ModelArtifact>(TrainArtifact(SchemeRef::A2q()));
  return *artifact;
}

/// Polls `cond` for up to `timeout_ms`; returns its final value.
bool WaitFor(const std::function<bool()>& cond, int timeout_ms = 10000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

PredictRequest MakeRequest(std::string model, std::string graph,
                           std::vector<int64_t> node_ids = {},
                           Precision precision = Precision::kFp32) {
  PredictRequest request;
  request.model = std::move(model);
  request.graph = std::move(graph);
  request.node_ids = std::move(node_ids);
  request.precision = precision;
  return request;
}

/// Every test starts and ends disarmed with the default delay, so a
/// MIXQ_FAULTS environment (armed at static init) only shapes the storm
/// test — the single-site tests below stay deterministic under any seed.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultInjector::Global().Disarm();
    fault::FaultInjector::Global().SetDelay(std::chrono::milliseconds(25));
  }
  void TearDown() override {
    fault::FaultInjector::Global().Disarm();
    fault::FaultInjector::Global().SetDelay(std::chrono::milliseconds(25));
  }
};

// Satellite regression: a forward that throws inside the dispatcher fails
// exactly the futures behind it with kInternal — none are left unfulfilled,
// the dispatcher thread survives, and the next Submit serves normally.
TEST_F(ChaosTest, ThrowingForwardLeavesNoUnfulfilledFutures) {
  CompiledModelPtr model = CompileModel(*Qat8Artifact()).ValueOrDie();
  BatcherOptions options;
  options.enable_cache = false;
  InferenceEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(
      engine.RegisterGraph("g", Qat8Artifact()->features, Qat8Artifact()->op)
          .ok());

  fault::FaultInjector::Global().ArmSite("plan.forward.throw",
                                         fault::SiteSchedule{1.0, 1, 0});
  Result<PredictResponse> faulted = engine.Submit(MakeRequest("m", "g", {0})).get();
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
  EXPECT_NE(faulted.status().message().find("injected"), std::string::npos);

  // The single scheduled fault is spent: the same engine serves again.
  Result<PredictResponse> healthy = engine.Submit(MakeRequest("m", "g", {0})).get();
  EXPECT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_GE(engine.GetStats().batcher.contained_faults, 1);
  // in_dispatch is decremented after promises are fulfilled; poll briefly.
  EXPECT_TRUE(
      WaitFor([&] { return engine.GetStats().batcher.in_dispatch == 0; }));
}

// An allocation failure growing executor scratch takes the same contained
// path as a throwing kernel: typed kInternal, dispatcher intact.
TEST_F(ChaosTest, AllocationFaultIsContainedAndTyped) {
  CompiledModelPtr model = CompileModel(*Qat8Artifact()).ValueOrDie();
  BatcherOptions options;
  options.enable_cache = false;
  InferenceEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(
      engine.RegisterGraph("g", Qat8Artifact()->features, Qat8Artifact()->op)
          .ok());

  fault::FaultInjector::Global().ArmSite("plan.alloc",
                                         fault::SiteSchedule{1.0, 1, 0});
  Result<PredictResponse> faulted = engine.Submit(MakeRequest("m", "g", {0})).get();
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(engine.Submit(MakeRequest("m", "g", {0})).get().ok());
}

// The breaker state machine end to end: consecutive contained failures trip
// it open, open fast-fails kUnavailable without running a forward, the
// half-open probe after the cooldown closes it again once faults stop.
TEST_F(ChaosTest, BreakerTripsFastFailsAndRecovers) {
  CompiledModelPtr model = CompileModel(*Qat8Artifact()).ValueOrDie();
  BatcherOptions options;
  options.enable_cache = false;
  options.breaker_failure_threshold = 2;
  options.breaker_open_duration = std::chrono::milliseconds(1000);
  InferenceEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(
      engine.RegisterGraph("g", Qat8Artifact()->features, Qat8Artifact()->op)
          .ok());

  fault::FaultInjector::Global().ArmSite("plan.forward.throw",
                                         fault::SiteSchedule{1.0, 2, 0});
  EXPECT_EQ(engine.Submit(MakeRequest("m", "g", {0})).get().status().code(),
            StatusCode::kInternal);
  EXPECT_EQ(engine.Submit(MakeRequest("m", "g", {0})).get().status().code(),
            StatusCode::kInternal);
  const ServingClock::time_point tripped = ServingClock::now();

  InferenceEngine::Stats mid = engine.GetStats();
  EXPECT_EQ(mid.breaker.trips, 1);
  ASSERT_EQ(mid.breaker.state.count("m|g"), 1u);
  EXPECT_EQ(mid.breaker.state.at("m|g"), "open");
  const int64_t forwards_when_open = mid.batcher.forwards;

  Result<PredictResponse> fast = engine.Submit(MakeRequest("m", "g", {0})).get();
  if (ServingClock::now() - tripped < std::chrono::milliseconds(900)) {
    // Within the cooldown (generous margin for slow machines): the breaker
    // answered without a forward.
    EXPECT_EQ(fast.status().code(), StatusCode::kUnavailable);
    InferenceEngine::Stats open_stats = engine.GetStats();
    EXPECT_EQ(open_stats.batcher.forwards, forwards_when_open);
    EXPECT_GE(open_stats.breaker.fast_fails, 1);
  }

  // Both scheduled faults are spent; after the cooldown the single half-open
  // probe runs clean and the breaker closes (entry dropped = closed).
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  Result<PredictResponse> probe = engine.Submit(MakeRequest("m", "g", {0})).get();
  EXPECT_TRUE(probe.ok()) << probe.status().ToString();
  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_GE(stats.breaker.probes, 1);
  EXPECT_GE(stats.breaker.closes, 1);
  EXPECT_EQ(stats.breaker.state.count("m|g"), 0u);
  EXPECT_GE(stats.batcher.contained_faults, 2);
}

// A forward wedged past max_forward_stall must not wedge the queue behind
// it: the watchdog expires queued past-deadline waiters while the forward
// is still running, and patient requests are served once it returns.
TEST_F(ChaosTest, WatchdogExpiresQueuedWaitersDuringStalledForward) {
  CompiledModelPtr model = CompileModel(*Qat8Artifact()).ValueOrDie();
  BatcherOptions options;
  options.enable_cache = false;
  options.breaker_failure_threshold = 0;  // isolate the watchdog
  options.watchdog_poll = std::chrono::milliseconds(5);
  options.max_forward_stall = std::chrono::milliseconds(50);
  InferenceEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  ASSERT_TRUE(
      engine.RegisterGraph("g", Qat8Artifact()->features, Qat8Artifact()->op)
          .ok());

  // One forward sleeps 1.5 s (an injected slow kernel), far past the stall
  // budget.
  fault::FaultInjector::Global().SetDelay(std::chrono::milliseconds(1500));
  fault::FaultInjector::Global().ArmSite("plan.forward.delay",
                                         fault::SiteSchedule{1.0, 1, 0});

  std::future<Result<PredictResponse>> slow =
      engine.Submit(MakeRequest("m", "g", {0}));
  ASSERT_TRUE(WaitFor([&] {
    InferenceEngine::Stats s = engine.GetStats();
    return s.batcher.in_dispatch >= 1 && s.batcher.queue_depth == 0;
  }));

  PredictRequest doomed_request = MakeRequest("m", "g", {1});
  doomed_request.deadline = ServingClock::now() + std::chrono::milliseconds(100);
  std::future<Result<PredictResponse>> doomed =
      engine.Submit(std::move(doomed_request));
  std::future<Result<PredictResponse>> patient =
      engine.Submit(MakeRequest("m", "g", {2}));

  // The doomed waiter resolves while the forward is still wedged — that is
  // the watchdog acting, not the dispatcher's next drain.
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(1)),
            std::future_status::ready);
  EXPECT_EQ(slow.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  EXPECT_EQ(doomed.get().status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(engine.GetStats().batcher.watchdog_expired, 1);

  EXPECT_TRUE(slow.get().ok());
  EXPECT_TRUE(patient.get().ok());
}

// Bundle-path faults become the loader's typed errors: a failed read is
// kInternal, injected bit rot takes the CRC path's kInvalidArgument, and a
// clean retry loads.
TEST_F(ChaosTest, BundleReadAndCrcFaultsAreTyped) {
  CompiledModelPtr model = CompileModel(*Qat8Artifact()).ValueOrDie();
  const std::string path = ::testing::TempDir() + "chaos_model.mqb";
  ASSERT_TRUE(engine::SaveBundle(*model, path).ok());

  fault::FaultInjector::Global().ArmSite("bundle.read",
                                         fault::SiteSchedule{1.0, 1, 0});
  EXPECT_EQ(engine::LoadBundle(path).status().code(), StatusCode::kInternal);
  fault::FaultInjector::Global().Disarm();

  fault::FaultInjector::Global().ArmSite("bundle.crc",
                                         fault::SiteSchedule{1.0, 1, 0});
  Result<CompiledModelPtr> corrupt = engine::LoadBundle(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(corrupt.status().message().find("injected"), std::string::npos);
  fault::FaultInjector::Global().Disarm();

  Result<CompiledModelPtr> clean = engine::LoadBundle(path);
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();
}

// The shed rung of the degradation ladder: when a drained batch crosses the
// shed threshold, kAuto groups that would need a full fp32 forward (no
// cache, no pruning, no int8 lowering) fail fast with kUnavailable instead
// of queuing a forward nobody can afford — and serve normally once load
// drops.
TEST_F(ChaosTest, OverloadShedsUnpayableAutoRequests) {
  CompiledModelPtr fp32_model = CompileModel(*Fp32Artifact()).ValueOrDie();
  ASSERT_FALSE(fp32_model->info().lowered_int8);  // kAuto resolves to fp32
  CompiledModelPtr slow_model = CompileModel(*A2qArtifact()).ValueOrDie();

  BatcherOptions options;
  options.enable_cache = false;
  options.enable_pruning = false;
  options.degrade_batch_threshold = 4;
  options.shed_batch_threshold = 6;
  InferenceEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("f", fp32_model).ok());
  ASSERT_TRUE(engine.RegisterModel("slow", slow_model).ok());
  ASSERT_TRUE(
      engine.RegisterGraph("g", Fp32Artifact()->features, Fp32Artifact()->op)
          .ok());
  ASSERT_TRUE(
      engine.RegisterGraph("stall", A2qArtifact()->features, A2qArtifact()->op)
          .ok());

  // Stall the dispatcher so the burst accumulates into one drained batch.
  std::unique_lock<std::mutex> stall(*A2qArtifact()->forward_mu);
  std::future<Result<PredictResponse>> blocked =
      engine.Submit(MakeRequest("slow", "stall"));
  ASSERT_TRUE(WaitFor([&] {
    InferenceEngine::Stats s = engine.GetStats();
    return s.batcher.in_dispatch >= 1 && s.batcher.queue_depth == 0;
  }));

  constexpr int kClients = 8;
  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int i = 0; i < kClients; ++i) {
    futures.push_back(
        engine.Submit(MakeRequest("f", "g", {i}, Precision::kAuto)));
  }
  stall.unlock();

  ASSERT_TRUE(blocked.get().ok());
  for (auto& future : futures) {
    Result<PredictResponse> result = future.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(result.status().message().find("load shed"), std::string::npos);
  }
  InferenceEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.batcher.shed, kClients);
  EXPECT_EQ(stats.breaker.trips, 0);  // sheds never feed the breaker

  // Load gone (drained batches back under the threshold): served normally.
  Result<PredictResponse> calm =
      engine.Submit(MakeRequest("f", "g", {0}, Precision::kAuto)).get();
  EXPECT_TRUE(calm.ok()) << calm.status().ToString();
}

// The acceptance storm: whole seeded schedules (every site firing at `rate`)
// against a serving engine under concurrent load. Invariant: every future
// resolves with a typed Status; afterwards, with faults disarmed, the engine
// recovers and no breaker is left open. Under MIXQ_FAULTS=seed:rate (the CI
// chaos job) the storm replays exactly that schedule.
TEST_F(ChaosTest, SeededFaultStormEveryFutureResolves) {
  CompiledModelPtr qat_model = CompileModel(*Qat8Artifact()).ValueOrDie();
  CompiledModelPtr fp32_model = CompileModel(*Fp32Artifact()).ValueOrDie();

  std::vector<std::pair<uint64_t, double>> schedules;
  if (const char* env = std::getenv("MIXQ_FAULTS")) {
    const uint64_t seed = std::strtoull(env, nullptr, 10);
    const char* colon = std::strchr(env, ':');
    const double rate = colon != nullptr ? std::strtod(colon + 1, nullptr) : 0.1;
    schedules.emplace_back(seed, rate);
  } else {
    for (uint64_t seed = 1; seed <= 3; ++seed) schedules.emplace_back(seed, 0.08);
  }

  for (const auto& [seed, rate] : schedules) {
    SCOPED_TRACE("MIXQ_FAULTS=" + std::to_string(seed) + ":" +
                 std::to_string(rate));
    fault::FaultInjector::Global().Arm(seed, rate);
    fault::FaultInjector::Global().SetDelay(std::chrono::milliseconds(2));

    BatcherOptions options;
    options.watchdog_poll = std::chrono::milliseconds(5);
    options.max_forward_stall = std::chrono::milliseconds(100);
    options.breaker_failure_threshold = 3;
    options.breaker_open_duration = std::chrono::milliseconds(50);
    InferenceEngine engine(options);
    ASSERT_TRUE(engine.RegisterModel("q", qat_model).ok());
    ASSERT_TRUE(engine.RegisterModel("f", fp32_model).ok());
    ASSERT_TRUE(
        engine.RegisterGraph("g", Qat8Artifact()->features, Qat8Artifact()->op)
            .ok());

    const int64_t n = Qat8Artifact()->features.rows();
    std::vector<std::future<Result<PredictResponse>>> futures;
    for (int i = 0; i < 150; ++i) {
      PredictRequest request;
      request.model = i % 3 == 0 ? "f" : "q";
      request.graph = "g";
      request.precision = i % 4 == 0 ? Precision::kAuto : Precision::kFp32;
      if (i % 5 == 0) request.node_ids = {i % n};
      if (i % 7 == 0) {
        request.deadline = ServingClock::now() + std::chrono::milliseconds(100);
      }
      futures.push_back(engine.Submit(std::move(request)));
      if (i % 16 == 15) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }

    for (size_t i = 0; i < futures.size(); ++i) {
      ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "future " << i << " never resolved";
      Result<PredictResponse> result = futures[i].get();
      if (!result.ok()) {
        EXPECT_NE(result.status().code(), StatusCode::kOk);
        EXPECT_FALSE(result.status().message().empty());
      }
    }

    // Faults stop -> self-healing: requests succeed again (the breaker's
    // cooldown is 50 ms, so WaitFor outlives any open window), and no
    // breaker is left open.
    fault::FaultInjector::Global().Disarm();
    ASSERT_TRUE(WaitFor(
        [&] { return engine.Submit(MakeRequest("q", "g", {0})).get().ok(); }));
    for (const auto& [key, state] : engine.GetStats().breaker.state) {
      EXPECT_NE(state, "open") << key;
    }
  }  // ~InferenceEngine: admission closes, dispatcher drains and joins
}

}  // namespace
}  // namespace mixq
