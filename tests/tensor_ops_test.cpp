// Copyright 2026 MixQ-GNN Authors
// Finite-difference gradient checks and forward-value tests for every
// differentiable op. Any autograd bug shows up here first.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace mixq {
namespace {

Tensor RandTensor(const Shape& shape, uint64_t seed, float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  return Tensor::RandomUniform(shape, &rng, lo, hi);
}

// ---- Forward values ---------------------------------------------------------

TEST(OpsForward, MatMulKnownValues) {
  Tensor a = Tensor::FromVector(Shape(2, 3), {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape(3, 2), {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsForward, GemmKernelsAgree) {
  // GemmNT / GemmTN must agree with explicit transposed GemmNN.
  const int64_t m = 7, k = 5, n = 6;
  Tensor a = RandTensor(Shape(m, k), 1);
  Tensor b = RandTensor(Shape(k, n), 2);
  std::vector<float> c1(static_cast<size_t>(m * n));
  GemmNN(a.data().data(), b.data().data(), c1.data(), m, k, n);
  // A*B via NT with B^T materialized: C = A * (B^T)^T.
  Tensor bt = Transpose(b);
  std::vector<float> c2(static_cast<size_t>(m * n));
  GemmNT(a.data().data(), bt.data().data(), c2.data(), m, k, n);
  for (size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4);
  // A^T path.
  Tensor at = Transpose(a);
  std::vector<float> c3(static_cast<size_t>(m * n));
  GemmTN(at.data().data(), b.data().data(), c3.data(), k, m, n);
  (void)c3;  // shapes differ; the above validates it runs. Value check below.
  std::vector<float> c4(static_cast<size_t>(m * n));
  GemmTN(at.data().data(), b.data().data(), c4.data(), k, m, n);
  // (A^T)^T * B == A * B
  for (size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c4[i], 1e-4);
}

TEST(OpsForward, ReluClampsNegatives) {
  Tensor x = Tensor::FromVector(Shape(4), {-2, -0.5f, 0, 3});
  Tensor y = Relu(x);
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[1], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[2], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[3], 3.0f);
}

TEST(OpsForward, Softmax1DSumsToOne) {
  Tensor x = Tensor::FromVector(Shape(4), {0.1f, 2.0f, -1.0f, 0.5f});
  Tensor y = Softmax1D(x);
  double s = 0.0;
  for (float v : y.data()) {
    EXPECT_GT(v, 0.0f);
    s += v;
  }
  EXPECT_NEAR(s, 1.0, 1e-6);
}

TEST(OpsForward, LogSoftmaxRowsNormalized) {
  Tensor x = RandTensor(Shape(5, 3), 3, -4.0f, 4.0f);
  Tensor y = LogSoftmaxRows(x);
  for (int64_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < 3; ++j) s += std::exp(y.at(i, j));
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(OpsForward, CrossEntropyMatchesManual) {
  Tensor logits = Tensor::FromVector(Shape(2, 2), {1, 0, 0, 1});
  std::vector<int64_t> labels = {0, 1};
  std::vector<uint8_t> mask = {1, 1};
  Tensor loss = CrossEntropyMasked(logits, labels, mask);
  const double expected = -std::log(std::exp(1.0) / (std::exp(1.0) + 1.0));
  EXPECT_NEAR(loss.item(), expected, 1e-5);
}

TEST(OpsForward, CrossEntropyIgnoresMaskedRows) {
  Tensor logits = Tensor::FromVector(Shape(2, 2), {10, -10, -10, 10});
  std::vector<int64_t> labels = {1, 1};  // row0 is wrong, but masked out
  std::vector<uint8_t> mask = {0, 1};
  Tensor loss = CrossEntropyMasked(logits, labels, mask);
  EXPECT_LT(loss.item(), 1e-4);
}

TEST(OpsForward, GlobalPoolModes) {
  Tensor x = Tensor::FromVector(Shape(4, 2), {1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<int64_t> batch = {0, 0, 1, 1};
  Tensor mx = GlobalPool(x, batch, 2, PoolMode::kMax);
  EXPECT_FLOAT_EQ(mx.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(mx.at(1, 1), 8.0f);
  Tensor mean = GlobalPool(x, batch, 2, PoolMode::kMean);
  EXPECT_FLOAT_EQ(mean.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(mean.at(1, 1), 7.0f);
  Tensor sum = GlobalPool(x, batch, 2, PoolMode::kSum);
  EXPECT_FLOAT_EQ(sum.at(0, 1), 6.0f);
  EXPECT_FLOAT_EQ(sum.at(1, 0), 12.0f);
}

TEST(OpsForward, DropoutEvalIsIdentity) {
  Rng rng(1);
  Tensor x = RandTensor(Shape(10, 10), 4);
  Tensor y = Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_EQ(y.impl_ptr(), x.impl_ptr());
}

TEST(OpsForward, DropoutPreservesExpectation) {
  Rng rng(1);
  Tensor x = Tensor::Ones(Shape(200, 50));
  Tensor y = Dropout(x, 0.5f, /*training=*/true, &rng);
  double mean = 0.0;
  for (float v : y.data()) mean += v;
  mean /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 1.0, 0.05);
}

TEST(OpsForward, ConcatColsLayout) {
  Tensor a = Tensor::FromVector(Shape(2, 1), {1, 2});
  Tensor b = Tensor::FromVector(Shape(2, 2), {3, 4, 5, 6});
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.shape(), Shape(2, 3));
  EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 5.0f);
}

TEST(OpsForward, GatherRowsSelects) {
  Tensor x = Tensor::FromVector(Shape(3, 2), {1, 2, 3, 4, 5, 6});
  Tensor y = GatherRows(x, {2, 0, 2});
  EXPECT_EQ(y.rows(), 3);
  EXPECT_FLOAT_EQ(y.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.at(2, 1), 6.0f);
}

// ---- Gradient checks --------------------------------------------------------

TEST(OpsGrad, MatMul) {
  Tensor a = RandTensor(Shape(4, 3), 10);
  Tensor b = RandTensor(Shape(3, 5), 11);
  b.SetRequiresGrad(true);
  auto res = CheckGradient(a, [&] { return Sum(MatMul(a, b)); });
  EXPECT_TRUE(res.ok()) << res.max_abs_error;
  auto res_b = CheckGradient(b, [&] { return Sum(MatMul(a, b)); });
  EXPECT_TRUE(res_b.ok()) << res_b.max_abs_error;
}

TEST(OpsGrad, ElementwiseBinary) {
  Tensor a = RandTensor(Shape(3, 3), 12);
  Tensor b = RandTensor(Shape(3, 3), 13);
  EXPECT_TRUE(CheckGradient(a, [&] { return Sum(Add(a, b)); }).ok());
  EXPECT_TRUE(CheckGradient(a, [&] { return Sum(Sub(a, b)); }).ok());
  EXPECT_TRUE(CheckGradient(a, [&] { return Sum(Mul(a, b)); }).ok());
  b.SetRequiresGrad(true);
  EXPECT_TRUE(CheckGradient(b, [&] { return Sum(Mul(a, b)); }).ok());
}

TEST(OpsGrad, ScaleAddScalarTransposeFlatten) {
  Tensor a = RandTensor(Shape(4, 2), 14);
  EXPECT_TRUE(CheckGradient(a, [&] { return Sum(Scale(a, -2.5f)); }).ok());
  EXPECT_TRUE(CheckGradient(a, [&] { return Sum(AddScalar(a, 3.0f)); }).ok());
  EXPECT_TRUE(CheckGradient(a, [&] { return Sum(Mul(Transpose(a), Transpose(a))); }).ok());
  EXPECT_TRUE(CheckGradient(a, [&] { return Sum(Flatten(a)); }).ok());
}

TEST(OpsGrad, AddRowBroadcast) {
  Tensor x = RandTensor(Shape(4, 3), 15);
  Tensor b = RandTensor(Shape(3), 16);
  b.SetRequiresGrad(true);
  EXPECT_TRUE(CheckGradient(x, [&] { return Sum(Mul(AddRowBroadcast(x, b),
                                                    AddRowBroadcast(x, b))); }).ok());
  EXPECT_TRUE(CheckGradient(b, [&] { return Sum(Mul(AddRowBroadcast(x, b),
                                                    AddRowBroadcast(x, b))); }).ok());
}

TEST(OpsGrad, ScaleByElementBothInputs) {
  Tensor x = RandTensor(Shape(3, 3), 17);
  Tensor w = RandTensor(Shape(4), 18);
  w.SetRequiresGrad(true);
  EXPECT_TRUE(CheckGradient(x, [&] { return Sum(ScaleByElement(x, w, 2)); }).ok());
  EXPECT_TRUE(CheckGradient(w, [&] { return Sum(ScaleByElement(x, w, 2)); }).ok());
}

TEST(OpsGrad, MulRowwise) {
  Tensor x = RandTensor(Shape(4, 3), 19);
  Tensor s = RandTensor(Shape(4), 20);
  s.SetRequiresGrad(true);
  EXPECT_TRUE(CheckGradient(x, [&] { return Sum(MulRowwise(x, s)); }).ok());
  EXPECT_TRUE(CheckGradient(s, [&] { return Sum(MulRowwise(x, s)); }).ok());
}

TEST(OpsGrad, Activations) {
  // Offset away from the ReLU kink so finite differences are clean.
  Tensor xp = RandTensor(Shape(4, 4), 21, 0.1f, 1.0f);
  Tensor xn = RandTensor(Shape(4, 4), 22, -1.0f, -0.1f);
  EXPECT_TRUE(CheckGradient(xp, [&] { return Sum(Relu(xp)); }).ok());
  EXPECT_TRUE(CheckGradient(xn, [&] { return Sum(Relu(xn)); }).ok());
  Tensor x = RandTensor(Shape(4, 4), 23);
  EXPECT_TRUE(CheckGradient(x, [&] { return Sum(Sigmoid(x)); }).ok());
  EXPECT_TRUE(CheckGradient(x, [&] { return Sum(Tanh(x)); }).ok());
  EXPECT_TRUE(CheckGradient(x, [&] { return Sum(Exp(x)); }).ok());
  Tensor xl = RandTensor(Shape(4, 4), 24, 0.2f, 1.0f);
  EXPECT_TRUE(CheckGradient(xl, [&] { return Sum(LeakyRelu(xl, 0.2f)); }).ok());
}

TEST(OpsGrad, SoftmaxAndLogSoftmax) {
  Tensor a = RandTensor(Shape(6), 25);
  EXPECT_TRUE(CheckGradient(a, [&] { return Sum(Mul(Softmax1D(a), Softmax1D(a))); }).ok());
  Tensor x = RandTensor(Shape(3, 4), 26);
  EXPECT_TRUE(
      CheckGradient(x, [&] { return Sum(Mul(LogSoftmaxRows(x), LogSoftmaxRows(x))); })
          .ok());
}

TEST(OpsGrad, Dot) {
  Tensor a = RandTensor(Shape(5), 27);
  Tensor b = RandTensor(Shape(5), 28);
  b.SetRequiresGrad(true);
  EXPECT_TRUE(CheckGradient(a, [&] { return Dot(a, b); }).ok());
  EXPECT_TRUE(CheckGradient(b, [&] { return Dot(a, b); }).ok());
}

TEST(OpsGrad, Losses) {
  Tensor logits = RandTensor(Shape(5, 3), 29, -2.0f, 2.0f);
  std::vector<int64_t> labels = {0, 2, 1, -1, 2};
  std::vector<uint8_t> mask = {1, 1, 0, 1, 1};
  EXPECT_TRUE(
      CheckGradient(logits, [&] { return CrossEntropyMasked(logits, labels, mask); })
          .ok());
  Tensor z = RandTensor(Shape(4, 3), 30, -2.0f, 2.0f);
  Tensor targets = Tensor::FromVector(Shape(4, 3), {1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0});
  std::vector<uint8_t> m2 = {1, 0, 1, 1};
  EXPECT_TRUE(
      CheckGradient(z, [&] { return BceWithLogitsMasked(z, targets, m2); }).ok());
}

TEST(OpsGrad, GatherConcatPool) {
  Tensor x = RandTensor(Shape(5, 3), 31);
  EXPECT_TRUE(
      CheckGradient(x, [&] { return Sum(Mul(GatherRows(x, {0, 2, 2, 4}),
                                            GatherRows(x, {0, 2, 2, 4}))); })
          .ok());
  Tensor b = RandTensor(Shape(5, 2), 32);
  b.SetRequiresGrad(true);
  EXPECT_TRUE(CheckGradient(x, [&] { return Sum(Mul(ConcatCols(x, b), ConcatCols(x, b))); }).ok());
  std::vector<int64_t> batch = {0, 0, 1, 1, 1};
  EXPECT_TRUE(
      CheckGradient(x, [&] { return Sum(GlobalPool(x, batch, 2, PoolMode::kSum)); }).ok());
  EXPECT_TRUE(
      CheckGradient(x, [&] { return Sum(GlobalPool(x, batch, 2, PoolMode::kMean)); }).ok());
  // Max pooling: perturbations can flip the argmax; use wide-gap data.
  Tensor xm = Tensor::FromVector(Shape(4, 2), {0, 1, 10, -5, 3, 20, -2, 4});
  xm.SetRequiresGrad(true);
  std::vector<int64_t> batch2 = {0, 0, 1, 1};
  EXPECT_TRUE(
      CheckGradient(xm, [&] { return Sum(GlobalPool(xm, batch2, 2, PoolMode::kMax)); })
          .ok());
}

TEST(OpsGrad, BatchNormTrainingAndEval) {
  Tensor x = RandTensor(Shape(8, 3), 33);
  Tensor gamma = Tensor::Ones(Shape(3), true);
  Tensor beta = Tensor::Zeros(Shape(3), true);
  std::vector<float> rm(3, 0.0f), rv(3, 1.0f);
  auto loss = [&] {
    std::vector<float> rm2 = rm, rv2 = rv;  // keep buffers stable across evals
    Tensor y = BatchNormRows(x, gamma, beta, &rm2, &rv2, /*training=*/true);
    return Sum(Mul(y, y));
  };
  EXPECT_TRUE(CheckGradient(x, loss).ok());
  EXPECT_TRUE(CheckGradient(gamma, loss).ok());
  EXPECT_TRUE(CheckGradient(beta, loss).ok());
  // Eval mode uses running stats as constants.
  auto eval_loss = [&] {
    std::vector<float> rm2 = rm, rv2 = rv;
    Tensor y = BatchNormRows(x, gamma, beta, &rm2, &rv2, /*training=*/false);
    return Sum(Mul(y, y));
  };
  EXPECT_TRUE(CheckGradient(x, eval_loss).ok());
}

TEST(OpsForward, BatchNormNormalizesColumns) {
  Rng rng(5);
  Tensor x = Tensor::RandomNormal(Shape(500, 2), &rng, 5.0f, 3.0f);
  Tensor gamma = Tensor::Ones(Shape(2));
  Tensor beta = Tensor::Zeros(Shape(2));
  std::vector<float> rm(2, 0.0f), rv(2, 1.0f);
  Tensor y = BatchNormRows(x, gamma, beta, &rm, &rv, /*training=*/true);
  for (int64_t j = 0; j < 2; ++j) {
    double mean = 0.0, var = 0.0;
    for (int64_t i = 0; i < 500; ++i) mean += y.at(i, j);
    mean /= 500.0;
    for (int64_t i = 0; i < 500; ++i) var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    var /= 500.0;
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

}  // namespace
}  // namespace mixq
