// Copyright 2026 MixQ-GNN Authors
// Tests for portable model bundles (engine/model_bundle.h): bitwise
// round-trip parity across every lowerable registry scheme on both
// backbones, serving a loaded model through the full Submit surface
// (batched, cached, pruned), graph bundle round-trips, manifest inspection,
// and the hardened load paths — truncation, bad magic, CRC mismatches,
// future-version rejection, and a fuzz-style sweep that corrupts every
// header byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/binary_io.h"
#include "core/experiment.h"
#include "engine/inference_engine.h"
#include "engine/model_bundle.h"

namespace mixq {
namespace {

using engine::BatcherOptions;
using engine::BundleKind;
using engine::BundleManifest;
using engine::BundleSection;
using engine::CompiledModelPtr;
using engine::CompileModel;
using engine::GraphBundle;
using engine::InferenceEngine;
using engine::InspectBundle;
using engine::LoadBundle;
using engine::LoadGraph;
using engine::Precision;
using engine::PredictRequest;
using engine::PredictResponse;
using engine::SaveBundle;
using engine::SaveGraph;

NodeDataset TinyCitation(uint64_t seed = 1) {
  CitationConfig c;
  c.name = "bundle-tiny";
  c.num_nodes = 160;
  c.num_classes = 3;
  c.feature_dim = 20;
  c.avg_degree = 3.0;
  c.homophily = 0.85;
  c.train_per_class = 8;
  c.val_count = 30;
  c.test_count = 60;
  c.seed = seed;
  return GenerateCitation(c);
}

std::shared_ptr<ModelArtifact> TrainArtifact(const SchemeRef& scheme,
                                             NodeModelKind model = NodeModelKind::kGcn,
                                             uint64_t seed = 1) {
  NodeExperimentConfig cfg;
  cfg.model = model;
  cfg.hidden = 12;
  cfg.num_layers = 2;
  cfg.dropout = 0.2f;
  cfg.train.epochs = 10;
  cfg.train.lr = 0.05f;
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(TinyCitation(seed), cfg, scheme);
  spec.seed = seed;
  spec.keep_artifact = true;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  EXPECT_TRUE(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ValueOrDie().artifact;
}

/// Unique path under the test temp dir; the file is removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(testing::TempDir() + "mixq_bundle_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Every scheme whose eval behaviour lowers to a flat plan — the set the
/// acceptance criteria require bundles to round-trip bitwise.
std::vector<std::pair<std::string, SchemeRef>> LowerableSchemes() {
  SchemeRef mixq = SchemeRef::MixQ(0.05, {2, 4, 8});
  mixq.params.SetInt("search_epochs", 5);
  return {
      {"fp32", SchemeRef::Fp32()},
      {"qat8", SchemeRef::Qat(8)},
      {"qat4", SchemeRef::Qat(4)},
      {"dq8", SchemeRef::Dq(8)},
      {"fixed", SchemeRef::Fixed({{"model/x", 8}})},
      {"random", SchemeRef::Random()},
      {"random_int8", SchemeRef::RandomInt8()},
      {"mixq", mixq},
  };
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(a.data(), b.data()) << what << " diverged";
}

// The acceptance contract: LoadBundle(SaveBundle(m)) predicts bitwise
// identically to m — Predict for every lowerable scheme, PredictQuantized
// whenever the int8 plan exists — on both backbones.
TEST(ModelBundleTest, RoundTripBitwiseParityAcrossSchemesAndBackbones) {
  for (NodeModelKind backbone : {NodeModelKind::kGcn, NodeModelKind::kSage}) {
    for (const auto& [label, ref] : LowerableSchemes()) {
      SCOPED_TRACE(std::string(backbone == NodeModelKind::kGcn ? "gcn/" : "sage/") +
                   label);
      auto artifact = TrainArtifact(ref, backbone);
      ASSERT_NE(artifact, nullptr);
      CompiledModelPtr original = CompileModel(*artifact).ValueOrDie();
      ASSERT_TRUE(original->info().lowered);

      TempFile file("roundtrip.mqb");
      ASSERT_TRUE(SaveBundle(*original, file.path()).ok());
      Result<CompiledModelPtr> loaded = LoadBundle(file.path());
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      const CompiledModelPtr& model = loaded.ValueOrDie();

      // Metadata survives.
      EXPECT_EQ(model->info().scheme_label, original->info().scheme_label);
      EXPECT_EQ(model->info().bit_assignment, original->info().bit_assignment);
      EXPECT_EQ(model->info().param_count, original->info().param_count);
      EXPECT_EQ(model->info().in_features, original->info().in_features);
      EXPECT_EQ(model->info().out_dim, original->info().out_dim);
      EXPECT_TRUE(model->info().lowered);
      EXPECT_EQ(model->info().lowered_int8, original->info().lowered_int8);

      Tensor want = original->Predict(artifact->features, artifact->op).ValueOrDie();
      Tensor got = model->Predict(artifact->features, artifact->op).ValueOrDie();
      ExpectBitwiseEqual(got, want, "Predict");

      if (original->info().lowered_int8) {
        Tensor want_q =
            original->PredictQuantized(artifact->features, artifact->op)
                .ValueOrDie();
        Tensor got_q =
            model->PredictQuantized(artifact->features, artifact->op).ValueOrDie();
        ExpectBitwiseEqual(got_q, want_q, "PredictQuantized");
      }

      // The live pipeline stayed in the training process.
      EXPECT_EQ(model->PredictReference(artifact->features, artifact->op)
                    .status()
                    .code(),
                StatusCode::kNotImplemented);
    }
  }
}

TEST(ModelBundleTest, PrunedForwardMatchesOriginalBitwise) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr original = CompileModel(*artifact).ValueOrDie();
  TempFile file("pruned.mqb");
  ASSERT_TRUE(SaveBundle(*original, file.path()).ok());
  CompiledModelPtr loaded = LoadBundle(file.path()).ValueOrDie();

  Tensor full = original->Predict(artifact->features, artifact->op).ValueOrDie();
  for (bool int8 : {false, true}) {
    engine::PredictScratch scratch;
    auto program = loaded->BuildFrontierProgram(artifact->op, {7, 42}, int8,
                                                nullptr, /*max_cost_fraction=*/1.1);
    ASSERT_NE(program, nullptr) << "int8=" << int8;
    Result<Tensor> rows =
        loaded->PredictPruned(artifact->features, *program, &scratch);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    Tensor want = int8 ? original->PredictQuantized(artifact->features, artifact->op)
                             .ValueOrDie()
                       : full;
    const std::vector<int64_t> targets = {7, 42};
    for (size_t i = 0; i < targets.size(); ++i) {
      for (int64_t c = 0; c < want.cols(); ++c) {
        EXPECT_EQ(rows.ValueOrDie().at(static_cast<int64_t>(i), c),
                  want.at(targets[i], c))
            << "int8=" << int8 << " row " << targets[i] << " col " << c;
      }
    }
  }
}

// A bundle-loaded model must serve through the whole engine surface with
// identical results: coalesced batches, the result cache (and its
// invalidation on ReplaceGraph), and the receptive-field-pruned route.
TEST(ModelBundleTest, LoadedModelServesThroughSubmit) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr original = CompileModel(*artifact).ValueOrDie();
  TempFile model_file("serve.mqb");
  TempFile graph_file("serve-graph.mqb");
  ASSERT_TRUE(SaveBundle(*original, model_file.path()).ok());
  ASSERT_TRUE(SaveGraph(artifact->features, artifact->op, graph_file.path()).ok());

  BatcherOptions options;
  options.pruned_min_graph_nodes = 0;  // tiny test graph: let pruning engage
  InferenceEngine engine(options);
  ASSERT_TRUE(engine.LoadModelFromFile("m", model_file.path()).ok());
  ASSERT_TRUE(engine.LoadGraphFromFile("g", graph_file.path()).ok());

  Tensor reference = original->Predict(artifact->features, artifact->op).ValueOrDie();

  auto make_request = [](std::vector<int64_t> ids) {
    PredictRequest request;
    request.model = "m";
    request.graph = "g";
    request.node_ids = std::move(ids);
    request.precision = Precision::kFp32;
    return request;
  };

  // Pruned route: a point query must not pay (or cache) a full forward.
  Result<PredictResponse> pruned = engine.Submit(make_request({42})).get();
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_TRUE(pruned.ValueOrDie().pruned);
  for (int64_t c = 0; c < reference.cols(); ++c) {
    EXPECT_EQ(pruned.ValueOrDie().rows.at(0, c), reference.at(42, c));
  }

  // Full + cached route.
  Result<PredictResponse> full = engine.Submit(make_request({})).get();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full.ValueOrDie().cache_hit);
  ExpectBitwiseEqual(full.ValueOrDie().rows, reference, "full forward");
  Result<PredictResponse> repeat = engine.Submit(make_request({})).get();
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.ValueOrDie().cache_hit);

  // ReplaceGraph bumps the registry version: the next response must not be
  // served from the stale cache entry.
  GraphBundle reloaded = LoadGraph(graph_file.path()).ValueOrDie();
  ASSERT_TRUE(
      engine.ReplaceGraph("g", reloaded.features, reloaded.op).ok());
  Result<PredictResponse> after_replace = engine.Submit(make_request({})).get();
  ASSERT_TRUE(after_replace.ok());
  EXPECT_FALSE(after_replace.ValueOrDie().cache_hit);
  ExpectBitwiseEqual(after_replace.ValueOrDie().rows, reference,
                     "post-replace forward");

  // Coalesced concurrent single-node clients, every row bitwise.
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 6; ++i) {
        const int64_t node = (t * 37 + i * 11) % reference.rows();
        Result<PredictResponse> response = engine.Submit(make_request({node})).get();
        if (!response.ok()) {
          ++mismatches[t];
          continue;
        }
        for (int64_t c = 0; c < reference.cols(); ++c) {
          if (response.ValueOrDie().rows.at(0, c) != reference.at(node, c)) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  for (int t = 0; t < kClients; ++t) EXPECT_EQ(mismatches[t], 0);
}

TEST(ModelBundleTest, SaveRefusesNonLoweredSchemes) {
  auto artifact = TrainArtifact(SchemeRef::A2q());
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  ASSERT_FALSE(model->info().lowered);
  TempFile file("a2q.mqb");
  Status status = SaveBundle(*model, file.path());
  EXPECT_EQ(status.code(), StatusCode::kNotImplemented);
  EXPECT_NE(status.message().find("pipeline"), std::string::npos);
}

TEST(ModelBundleTest, GraphBundleRoundTripsBitwise) {
  auto artifact = TrainArtifact(SchemeRef::Fp32());
  TempFile file("graph.mqb");
  ASSERT_TRUE(SaveGraph(artifact->features, artifact->op, file.path()).ok());

  Result<GraphBundle> loaded = LoadGraph(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const GraphBundle& g = loaded.ValueOrDie();
  const CsrMatrix& want = artifact->op->matrix();
  const CsrMatrix& got = g.op->matrix();
  EXPECT_EQ(got.rows(), want.rows());
  EXPECT_EQ(got.cols(), want.cols());
  EXPECT_EQ(got.row_ptr(), want.row_ptr());
  EXPECT_EQ(got.col_idx(), want.col_idx());
  EXPECT_EQ(got.values(), want.values());
  ExpectBitwiseEqual(g.features, artifact->features, "features");

  // Save-side validation.
  EXPECT_EQ(SaveGraph(Tensor(), artifact->op, file.path()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SaveGraph(artifact->features, nullptr, file.path()).code(),
            StatusCode::kInvalidArgument);
}

TEST(ModelBundleTest, EngineFileLoadErrorPaths) {
  auto artifact = TrainArtifact(SchemeRef::Qat(4));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  TempFile model_file("errors.mqb");
  TempFile graph_file("errors-graph.mqb");
  ASSERT_TRUE(SaveBundle(*model, model_file.path()).ok());
  ASSERT_TRUE(SaveGraph(artifact->features, artifact->op, graph_file.path()).ok());

  InferenceEngine engine;
  EXPECT_EQ(engine.LoadModelFromFile("m", "/nonexistent/model.mqb").code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(engine.LoadModelFromFile("m", model_file.path()).ok());
  // Duplicate name: same error RegisterModel reports.
  EXPECT_EQ(engine.LoadModelFromFile("m", model_file.path()).code(),
            StatusCode::kInvalidArgument);
  // Kind confusion is a typed error, not a misparse.
  EXPECT_EQ(engine.LoadModelFromFile("m2", graph_file.path()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.LoadGraphFromFile("g", model_file.path()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine.LoadGraphFromFile("g", graph_file.path()).ok());

  // The loaded pair serves.
  PredictRequest request;
  request.model = "m";
  request.graph = "g";
  request.node_ids = {1};
  Result<PredictResponse> response = engine.Submit(std::move(request)).get();
  EXPECT_TRUE(response.ok()) << response.status().ToString();
}

TEST(ModelBundleTest, InspectReportsManifest) {
  auto artifact = TrainArtifact(SchemeRef::Qat(8));
  CompiledModelPtr model = CompileModel(*artifact).ValueOrDie();
  TempFile model_file("inspect.mqb");
  TempFile graph_file("inspect-graph.mqb");
  ASSERT_TRUE(SaveBundle(*model, model_file.path()).ok());
  ASSERT_TRUE(SaveGraph(artifact->features, artifact->op, graph_file.path()).ok());

  Result<BundleManifest> manifest = InspectBundle(model_file.path());
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  const BundleManifest& m = manifest.ValueOrDie();
  EXPECT_EQ(m.format_major, engine::kBundleFormatMajor);
  EXPECT_EQ(m.kind, BundleKind::kModel);
  EXPECT_EQ(m.info.scheme_label, model->info().scheme_label);
  EXPECT_EQ(m.info.bit_assignment, model->info().bit_assignment);
  EXPECT_TRUE(m.info.lowered_int8);
  ASSERT_EQ(m.sections.size(), 3u);  // INFO, PLAN, IPLN
  EXPECT_EQ(m.sections[0].tag, "INFO");
  EXPECT_EQ(m.sections[1].tag, "PLAN");
  EXPECT_EQ(m.sections[2].tag, "IPLN");
  for (const BundleSection& s : m.sections) EXPECT_GT(s.size, 0u);

  Result<BundleManifest> graph_manifest = InspectBundle(graph_file.path());
  ASSERT_TRUE(graph_manifest.ok());
  EXPECT_EQ(graph_manifest.ValueOrDie().kind, BundleKind::kGraph);
  EXPECT_EQ(graph_manifest.ValueOrDie().graph_nodes, artifact->features.rows());
  EXPECT_EQ(graph_manifest.ValueOrDie().graph_nnz, artifact->op->nnz());
}

// ---- hardened load paths ---------------------------------------------------

class BundleCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    artifact_ = TrainArtifact(SchemeRef::Qat(8));
    model_ = CompileModel(*artifact_).ValueOrDie();
    file_ = std::make_unique<TempFile>("corrupt.mqb");
    ASSERT_TRUE(SaveBundle(*model_, file_->path()).ok());
    ASSERT_TRUE(ReadFileBytes(file_->path(), &bytes_).ok());
    manifest_ = InspectBundle(file_->path()).MoveValueOrDie();
  }

  /// Writes `mutated` to a scratch path and returns LoadBundle's status.
  Status LoadMutated(const std::vector<uint8_t>& mutated) {
    TempFile mutated_file("mutated.mqb");
    EXPECT_TRUE(WriteFileAtomic(mutated_file.path(), mutated).ok());
    return LoadBundle(mutated_file.path()).status();
  }

  std::shared_ptr<ModelArtifact> artifact_;
  CompiledModelPtr model_;
  std::unique_ptr<TempFile> file_;
  std::vector<uint8_t> bytes_;
  BundleManifest manifest_;
};

TEST_F(BundleCorruptionTest, TruncationAtEveryBoundaryFails) {
  // Every prefix — probed at a stride plus all section boundaries — must
  // come back as a typed error, never a crash or a silent success.
  std::vector<size_t> cut_points;
  for (size_t cut = 0; cut < bytes_.size(); cut += 97) cut_points.push_back(cut);
  for (const BundleSection& s : manifest_.sections) {
    cut_points.push_back(static_cast<size_t>(s.offset) - 16);
    cut_points.push_back(static_cast<size_t>(s.offset));
    cut_points.push_back(static_cast<size_t>(s.offset + s.size) - 1);
  }
  for (size_t cut : cut_points) {
    std::vector<uint8_t> mutated(bytes_.begin(),
                                 bytes_.begin() + static_cast<long>(cut));
    Status status = LoadMutated(mutated);
    EXPECT_FALSE(status.ok()) << "prefix of " << cut << " bytes loaded";
  }
}

TEST_F(BundleCorruptionTest, BadMagicRejected) {
  std::vector<uint8_t> mutated = bytes_;
  mutated[0] ^= 0xFF;
  EXPECT_EQ(LoadMutated(mutated).code(), StatusCode::kInvalidArgument);
}

TEST_F(BundleCorruptionTest, FutureMajorVersionRejected) {
  std::vector<uint8_t> mutated = bytes_;
  mutated[8] = 0xFF;  // format major lives at offset 8 (little-endian u16)
  EXPECT_EQ(LoadMutated(mutated).code(), StatusCode::kNotImplemented);
}

TEST_F(BundleCorruptionTest, PayloadCorruptionFailsChecksum) {
  for (const BundleSection& s : manifest_.sections) {
    std::vector<uint8_t> mutated = bytes_;
    mutated[static_cast<size_t>(s.offset + s.size / 2)] ^= 0x01;
    Status status = LoadMutated(mutated);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << s.tag;
    EXPECT_NE(status.message().find("checksum"), std::string::npos) << s.tag;
  }
}

TEST_F(BundleCorruptionTest, BitFlipInEverySectionHeaderByteFails) {
  // The fuzz sweep of the satellite task: each section header is 16 bytes
  // (tag, size, crc) starting 16 bytes before its payload. Flipping any of
  // them must produce a typed error — a flipped tag demotes a required
  // section to an ignorable unknown one, a flipped size lands on truncation
  // or a checksum mismatch, a flipped checksum is a mismatch by definition.
  for (const BundleSection& s : manifest_.sections) {
    for (size_t byte = 0; byte < 16; ++byte) {
      std::vector<uint8_t> mutated = bytes_;
      mutated[static_cast<size_t>(s.offset) - 16 + byte] ^= 0xFF;
      Status status = LoadMutated(mutated);
      EXPECT_FALSE(status.ok())
          << s.tag << " header byte " << byte << " flip loaded";
    }
  }
}

TEST_F(BundleCorruptionTest, FileHeaderBitFlipsFail) {
  // Magic (0-7), format major (8-9), and kind (12-15) flips must all be
  // typed errors. The minor version (10-11) is exempt by design: newer
  // minors are forward-compatible and load fine.
  for (size_t byte : {size_t{0}, size_t{3}, size_t{7}, size_t{8}, size_t{9},
                      size_t{12}, size_t{13}, size_t{14}, size_t{15}}) {
    std::vector<uint8_t> mutated = bytes_;
    mutated[byte] ^= 0xFF;
    EXPECT_FALSE(LoadMutated(mutated).ok()) << "header byte " << byte;
  }
  std::vector<uint8_t> newer_minor = bytes_;
  newer_minor[10] ^= 0xFF;
  EXPECT_TRUE(LoadMutated(newer_minor).ok()) << "newer minor must stay loadable";
}

TEST_F(BundleCorruptionTest, UnknownTrailingSectionIgnored) {
  // Forward compatibility: a future minor may append sections this binary
  // does not know; they must be skipped, not rejected.
  std::vector<uint8_t> mutated = bytes_;
  const char tag[4] = {'X', 'T', 'R', 'A'};
  const uint8_t payload[4] = {1, 2, 3, 4};
  mutated.insert(mutated.end(), tag, tag + 4);
  const uint64_t size = sizeof(payload);
  for (int i = 0; i < 8; ++i) {
    mutated.push_back(static_cast<uint8_t>(size >> (8 * i)));
  }
  const uint32_t crc = Crc32(payload, sizeof(payload));
  for (int i = 0; i < 4; ++i) {
    mutated.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  mutated.insert(mutated.end(), payload, payload + sizeof(payload));

  TempFile extended("extended.mqb");
  ASSERT_TRUE(WriteFileAtomic(extended.path(), mutated).ok());
  Result<CompiledModelPtr> loaded = LoadBundle(extended.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  Tensor want = model_->Predict(artifact_->features, artifact_->op).ValueOrDie();
  Tensor got = loaded.ValueOrDie()
                   ->Predict(artifact_->features, artifact_->op)
                   .ValueOrDie();
  EXPECT_EQ(got.data(), want.data());
}

}  // namespace
}  // namespace mixq
