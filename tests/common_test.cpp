// Copyright 2026 MixQ-GNN Authors
// Unit tests for src/common: Status/Result, RNG, statistics, parallelism,
// the bounded MPMC admission queue, and the lock-free latency histogram.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/latency_histogram.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace mixq {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad bits");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad bits");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad bits");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotImplemented), "NotImplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DeadlineExceeded");
  EXPECT_EQ(Status::ResourceExhausted("full").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = r.MoveValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.Uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, PowerLawBounds) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const int64_t k = rng.PowerLaw(2.5, 50);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 50);
  }
}

TEST(RngTest, PowerLawIsHeavyTailed) {
  Rng rng(9);
  int64_t ones = 0, big = 0;
  for (int i = 0; i < 5000; ++i) {
    const int64_t k = rng.PowerLaw(2.2, 1000);
    if (k == 1) ++ones;
    if (k >= 10) ++big;
  }
  EXPECT_GT(ones, 2000);  // mass concentrated at small degrees
  EXPECT_GT(big, 20);     // but a real tail exists
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(100, 40);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(5);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(w), 1u);
}

TEST(SplitMixTest, DeterministicSequence) {
  uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
}

TEST(StatsTest, MeanAndStd) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_NEAR(StdDev(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> yneg = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, yneg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, SpearmanMonotoneNonlinear) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, RanksHandleTies) {
  auto r = Ranks({10.0, 20.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(StatsTest, PercentileEndpointsAndMedian) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
}

TEST(StatsTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 25), 2.5);
}

TEST(StatsTest, ParetoFrontExtractsNonDominated) {
  std::vector<ParetoPoint> pts = {
      {1.0, 0.5, 0}, {2.0, 0.7, 1}, {2.0, 0.6, 2}, {3.0, 0.65, 3}, {4.0, 0.9, 4}};
  auto front = ParetoFront(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].tag, 0);
  EXPECT_EQ(front[1].tag, 1);
  EXPECT_EQ(front[2].tag, 4);
}

TEST(StatsTest, ParetoFrontSingleton) {
  auto front = ParetoFront({{1.0, 1.0, 7}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].tag, 7);
}

TEST(ParallelTest, CoversFullRange) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  }, /*grain=*/16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, EmptyAndSmallRanges) {
  int calls = 0;
  ParallelFor(0, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int64_t> sum{0};
  ParallelFor(5, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 10);
}

// Regression: a throw inside a worker chunk used to escape a std::thread and
// std::terminate the process. It must now surface on the calling thread.
TEST(ParallelTest, PropagatesWorkerExceptions) {
  // The chunk containing index 42 throws — whichever worker (or the serial
  // fallback) ends up running it.
  EXPECT_THROW(
      ParallelFor(
          1000,
          [](int64_t b, int64_t e) {
            if (b <= 42 && 42 < e) throw std::runtime_error("worker chunk failed");
          },
          /*grain=*/16),
      std::runtime_error);
  // Every chunk still runs: siblings of the throwing chunk are not skipped.
  std::vector<std::atomic<int>> hits(1000);
  try {
    ParallelFor(
        1000,
        [&](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
          throw std::runtime_error("every chunk throws");
        },
        /*grain=*/16);
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error&) {
  }
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // The pool survives a throwing loop and keeps serving.
  std::atomic<int64_t> sum{0};
  ParallelFor(
      1000, [&](int64_t b, int64_t e) { sum += e - b; }, /*grain=*/16);
  EXPECT_EQ(sum.load(), 1000);
}

// The persistent pool must tolerate concurrent ParallelFor calls from many
// request threads (the serving engine's usage pattern) and nested calls from
// inside a chunk (which degrade to serial).
TEST(ParallelTest, ConcurrentAndNestedLoops) {
  constexpr int kCallers = 8;
  std::vector<std::thread> callers;
  std::vector<int64_t> sums(kCallers, 0);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int iter = 0; iter < 20; ++iter) {
        std::atomic<int64_t> sum{0};
        ParallelFor(
            2000,
            [&](int64_t b, int64_t e) {
              int64_t local = 0;
              ParallelFor(
                  e - b, [&](int64_t ib, int64_t ie) { local += ie - ib; },
                  /*grain=*/8);
              sum += local;
            },
            /*grain=*/64);
        sums[static_cast<size_t>(t)] = sum.load();
      }
    });
  }
  for (auto& c : callers) c.join();
  for (int t = 0; t < kCallers; ++t) EXPECT_EQ(sums[static_cast<size_t>(t)], 2000);
}

TEST(BoundedQueueTest, PushDrainOrderAndOverflow) {
  BoundedQueue<int> queue(3);
  EXPECT_EQ(queue.capacity(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(queue.TryPush(int(i)));
  // Full: the rejected item is NOT consumed (movable-state contract).
  int spare = 99;
  EXPECT_FALSE(queue.TryPush(std::move(spare)));
  EXPECT_EQ(spare, 99);
  EXPECT_EQ(queue.size(), 3u);

  std::vector<int> drained = queue.WaitDrain();
  EXPECT_EQ(drained, (std::vector<int>{0, 1, 2}));  // FIFO
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.TryPush(7));  // capacity freed by the drain
}

TEST(BoundedQueueTest, CloseWakesConsumerAndRejectsProducers) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.TryPush(1));
  std::vector<int> first;
  std::vector<int> second;
  std::thread consumer([&] {
    first = queue.WaitDrain();    // gets the queued item
    second = queue.WaitDrain();   // blocks until Close, then empty
  });
  // Close while the consumer may be blocked: it must wake with empty.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Close();
  consumer.join();
  EXPECT_EQ(first, std::vector<int>{1});
  EXPECT_TRUE(second.empty());
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.TryPush(2));  // closed queues admit nothing
}

TEST(BoundedQueueTest, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.TryPush(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> all;
  while (all.size() < kProducers * kPerProducer) {
    std::vector<int> got = queue.WaitDrain();
    all.insert(all.end(), got.begin(), got.end());
  }
  for (auto& p : producers) p.join();
  std::set<int> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(kProducers * kPerProducer));
}

TEST(LatencyHistogramTest, EmptyAndSingleObservation) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.Percentile(50.0), 0.0);
  hist.Record(100.0);
  EXPECT_EQ(hist.count(), 1);
  // One sample: every percentile lands in its (geometric) bucket.
  EXPECT_GT(hist.p50(), 50.0);
  EXPECT_LT(hist.p50(), 200.0);
  EXPECT_EQ(hist.p50(), hist.p99());
}

TEST(LatencyHistogramTest, PercentilesTrackDistribution) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i));
  EXPECT_EQ(hist.count(), 1000);
  // Geometric buckets (growth 1.333) are good to ~±35% — monitoring
  // accuracy, which is what the serving stats need.
  EXPECT_GT(hist.p50(), 500.0 * 0.65);
  EXPECT_LT(hist.p50(), 500.0 * 1.45);
  EXPECT_GT(hist.p99(), 990.0 * 0.65);
  EXPECT_LT(hist.p99(), 990.0 * 1.45);
  EXPECT_LE(hist.p50(), hist.p99());
  EXPECT_LE(hist.Percentile(0.0), hist.Percentile(100.0));
}

TEST(LatencyHistogramTest, ClampsOutliersAndConcurrentRecords) {
  LatencyHistogram hist;
  hist.Record(-5.0);   // below span: first bucket, not UB
  hist.Record(1e12);   // above span: last bucket
  EXPECT_EQ(hist.count(), 2);

  LatencyHistogram shared;
  constexpr int kThreads = 4;
  constexpr int kRecords = 2000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 1; i <= kRecords; ++i) shared.Record(static_cast<double>(i));
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(shared.count(), kThreads * kRecords);
  EXPECT_GT(shared.p99(), shared.p50());
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"bb", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("| name "), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(FormatFloat(3.14159, 2), "3.14");
  EXPECT_EQ(FormatMeanStd(81.53, 0.74, 1), "81.5 ±0.7");
}

}  // namespace
}  // namespace mixq
