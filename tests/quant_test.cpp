// Copyright 2026 MixQ-GNN Authors
// Tests for quantization parameters, observers, and fake quantization (STE).
#include <gtest/gtest.h>

#include <cmath>

#include "quant/fake_quant.h"
#include "quant/observer.h"
#include "quant/quant_params.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace mixq {
namespace {

TEST(QuantParamsTest, SymmetricRanges) {
  QuantParams p;
  p.bits = 8;
  p.symmetric = true;
  EXPECT_EQ(p.qmin(), -127);
  EXPECT_EQ(p.qmax(), 127);
  p.bits = 4;
  EXPECT_EQ(p.qmin(), -7);
  EXPECT_EQ(p.qmax(), 7);
  p.bits = 2;
  EXPECT_EQ(p.qmin(), -1);
  EXPECT_EQ(p.qmax(), 1);
}

TEST(QuantParamsTest, AsymmetricRanges) {
  QuantParams p;
  p.bits = 8;
  p.symmetric = false;
  EXPECT_EQ(p.qmin(), 0);
  EXPECT_EQ(p.qmax(), 255);
}

TEST(QuantParamsTest, ParamsFromRangeSymmetricCoversBound) {
  QuantParams p = ParamsFromRange(-3.0f, 5.0f, 8, /*symmetric=*/true);
  EXPECT_EQ(p.zero_point, 0);
  EXPECT_NEAR(p.scale, 5.0f / 127.0f, 1e-6);
  // 5.0 quantizes to qmax exactly.
  EXPECT_EQ(QuantizeValue(5.0f, p), 127);
  EXPECT_EQ(QuantizeValue(-5.0f, p), -127);
}

TEST(QuantParamsTest, ParamsFromRangeAsymmetricMapsEndpoints) {
  QuantParams p = ParamsFromRange(-1.0f, 3.0f, 8, /*symmetric=*/false);
  EXPECT_EQ(QuantizeValue(-1.0f, p), 0);
  EXPECT_EQ(QuantizeValue(3.0f, p), 255);
  // Zero must be exactly representable: Q(0) == zero_point.
  EXPECT_EQ(QuantizeValue(0.0f, p), p.zero_point);
  EXPECT_NEAR(DequantizeValue(p.zero_point, p), 0.0f, 1e-6);
}

TEST(QuantParamsTest, DegenerateRangeYieldsIdentityScale) {
  QuantParams p = ParamsFromRange(2.0f, 2.0f, 8, true);
  EXPECT_GT(p.scale, 0.0f);
}

TEST(QuantRoundTripTest, ErrorBoundedByHalfScale) {
  QuantParams p = ParamsFromRange(-4.0f, 4.0f, 8, true);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.Uniform(-4.0f, 4.0f);
    const float xq = FakeQuantValue(x, p);
    EXPECT_LE(std::fabs(x - xq), p.scale * 0.5f + 1e-6f);
  }
}

TEST(QuantRoundTripTest, Idempotent) {
  QuantParams p = ParamsFromRange(-2.0f, 2.0f, 4, true);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const float x = rng.Uniform(-3.0f, 3.0f);
    const float once = FakeQuantValue(x, p);
    EXPECT_FLOAT_EQ(FakeQuantValue(once, p), once);
  }
}

TEST(QuantRoundTripTest, ClipsOutOfRange) {
  QuantParams p = ParamsFromRange(-1.0f, 1.0f, 8, true);
  EXPECT_EQ(QuantizeValue(100.0f, p), p.qmax());
  EXPECT_EQ(QuantizeValue(-100.0f, p), p.qmin());
}

TEST(ObserverTest, MinMaxTracksExtremes) {
  RangeObserver obs(ObserverKind::kMinMax);
  obs.Observe({1.0f, 2.0f});
  obs.Observe({-3.0f, 0.5f});
  EXPECT_FLOAT_EQ(obs.lo(), -3.0f);
  EXPECT_FLOAT_EQ(obs.hi(), 2.0f);
}

TEST(ObserverTest, EmaSmoothsTowardNewBatches) {
  RangeObserver obs(ObserverKind::kEma, /*ema_momentum=*/0.5f);
  obs.Observe({0.0f, 10.0f});   // init: [0, 10]
  obs.Observe({0.0f, 20.0f});   // ema: hi = 0.5*10 + 0.5*20 = 15
  EXPECT_FLOAT_EQ(obs.hi(), 15.0f);
}

TEST(ObserverTest, PercentileIgnoresOutliers) {
  std::vector<float> values(999, 1.0f);
  values.push_back(1000.0f);  // single outlier
  RangeObserver obs(ObserverKind::kPercentile, 0.9f, /*percentile=*/99.0f);
  obs.Observe(values);
  EXPECT_LT(obs.hi(), 100.0f);  // clipped far below the outlier
  RangeObserver minmax(ObserverKind::kMinMax);
  minmax.Observe(values);
  EXPECT_FLOAT_EQ(minmax.hi(), 1000.0f);
}

TEST(ObserverTest, UninitializedMakesDefaultParams) {
  RangeObserver obs(ObserverKind::kMinMax);
  QuantParams p = obs.MakeParams(8, true);
  EXPECT_GT(p.scale, 0.0f);
}

TEST(FakeQuantOpTest, ForwardSnapsToGrid) {
  QuantParams p = ParamsFromRange(-1.0f, 1.0f, 2, true);  // grid {-s, 0, s}
  Tensor x = Tensor::FromVector(Shape(4), {-0.9f, -0.2f, 0.3f, 0.8f});
  Tensor y = FakeQuantOp(x, p);
  for (float v : y.data()) {
    const float q = v / p.scale;
    EXPECT_NEAR(q, std::round(q), 1e-5);
    EXPECT_LE(std::fabs(q), 1.0f);
  }
}

TEST(FakeQuantOpTest, StePassesGradInRange) {
  QuantParams p = ParamsFromRange(-1.0f, 1.0f, 8, true);
  Tensor x = Tensor::FromVector(Shape(3), {0.5f, -0.3f, 0.9f}, true);
  Sum(FakeQuantOp(x, p)).Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 1.0f);
}

TEST(FakeQuantOpTest, SteBlocksGradOutOfRange) {
  QuantParams p = ParamsFromRange(-1.0f, 1.0f, 8, true);
  Tensor x = Tensor::FromVector(Shape(3), {5.0f, -0.3f, -7.0f}, true);
  Sum(FakeQuantOp(x, p)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 0.0f);
}

TEST(FakeQuantMaskedTest, ProtectedRowsPassThrough) {
  QuantParams p = ParamsFromRange(-1.0f, 1.0f, 2, true);
  Tensor x = Tensor::FromVector(Shape(2, 2), {0.37f, -0.61f, 0.37f, -0.61f}, true);
  std::vector<uint8_t> mask = {1, 0};  // protect row 0
  Tensor y = FakeQuantRowsMasked(x, p, mask);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.37f);   // untouched
  EXPECT_FLOAT_EQ(y.at(0, 1), -0.61f);
  EXPECT_NE(y.at(1, 0), 0.37f);         // quantized
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);   // identity grad on protected rows
}

TEST(FakeQuantizerTest, ObservesDuringTrainingOnly) {
  FakeQuantizerConfig cfg;
  cfg.bits = 8;
  cfg.observer = ObserverKind::kMinMax;
  FakeQuantizer q(cfg);
  Tensor a = Tensor::FromVector(Shape(2), {-1.0f, 1.0f});
  q.Apply(a, /*training=*/true);
  const float scale_after_train = q.params().scale;
  Tensor b = Tensor::FromVector(Shape(2), {-100.0f, 100.0f});
  q.Apply(b, /*training=*/false);  // eval: must not expand the range
  EXPECT_FLOAT_EQ(q.params().scale, scale_after_train);
  q.Apply(b, /*training=*/true);
  EXPECT_GT(q.params().scale, scale_after_train);
}

TEST(FakeQuantizerTest, HigherBitsLowerError) {
  Rng rng(3);
  Tensor x = Tensor::RandomUniform(Shape(1000), &rng, -1.0f, 1.0f);
  auto error_at = [&](int bits) {
    FakeQuantizerConfig cfg;
    cfg.bits = bits;
    cfg.observer = ObserverKind::kMinMax;
    FakeQuantizer q(cfg);
    Tensor y = q.Apply(x, true);
    double err = 0.0;
    for (size_t i = 0; i < y.data().size(); ++i) {
      err += std::fabs(y.data()[i] - x.data()[i]);
    }
    return err;
  };
  const double e2 = error_at(2), e4 = error_at(4), e8 = error_at(8);
  EXPECT_GT(e2, e4);
  EXPECT_GT(e4, e8);
}

TEST(FakeQuantOpTest, SteGradientTracksTrueGradient) {
  // For loss = Σ q(x)², the STE analytic gradient is 2·q(x); since
  // |q(x) − x| ≤ scale/2 in range, the gradient must track 2·x within scale.
  QuantParams p = ParamsFromRange(-2.0f, 2.0f, 8, true);
  Rng rng(9);
  Tensor x = Tensor::RandomUniform(Shape(4, 4), &rng, -1.0f, 1.0f);
  x.SetRequiresGrad(true);
  Sum(Mul(FakeQuantOp(x, p), FakeQuantOp(x, p))).Backward();
  ASSERT_EQ(x.grad().size(), x.data().size());
  for (size_t i = 0; i < x.data().size(); ++i) {
    EXPECT_NEAR(x.grad()[i], 2.0f * x.data()[i], p.scale + 1e-5f);
  }
}

}  // namespace
}  // namespace mixq
