// Copyright 2026 MixQ-GNN Authors
// Tests for the A2Q-style baseline (per-node learnable scales/bit-widths).
#include <gtest/gtest.h>

#include "quant/a2q.h"
#include "tensor/ops.h"
#include "train/optimizer.h"

namespace mixq {
namespace {

TEST(A2qOpTest, ForwardSnapsPerRow) {
  Tensor x = Tensor::FromVector(Shape(2, 2), {0.5f, -0.25f, 0.5f, -0.25f});
  // Row 0: scale e^0 = 1 (coarse); row 1: scale e^-3 ≈ 0.05 (fine).
  Tensor ls = Tensor::FromVector(Shape(2), {0.0f, -3.0f});
  Tensor beta = Tensor::Full(Shape(2), 0.0f);  // bits = 1 + 7*0.5 = 4.5 -> 4
  Tensor y = A2qFakeQuantRows(x, ls, beta);
  // Row 0 with scale 1: 0.5 rounds to 0 or 1 -> error >= 0.25.
  EXPECT_GT(std::fabs(y.at(0, 0) - 0.5f), 0.2f);
  // Row 1 with fine scale: near-exact.
  EXPECT_NEAR(y.at(1, 0), 0.5f, 0.05f);
  EXPECT_NEAR(y.at(1, 1), -0.25f, 0.05f);
}

TEST(A2qOpTest, SteGradientForX) {
  Tensor x = Tensor::FromVector(Shape(1, 3), {0.1f, 0.2f, -0.1f}, true);
  Tensor ls = Tensor::Full(Shape(1), -3.0f);
  Tensor beta = Tensor::Full(Shape(1), 2.0f);  // ~7 bits, nothing clipped
  Sum(A2qFakeQuantRows(x, ls, beta)).Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 1.0f);
}

TEST(A2qOpTest, ClippedValuesRouteGradToBits) {
  // A clipped value passes no gradient to x but drives the bit logit and the
  // scale (a second, in-range value avoids symmetric cancellation).
  Tensor x = Tensor::FromVector(Shape(1, 2), {100.0f, 0.2f}, true);
  Tensor ls = Tensor::Full(Shape(1), 0.0f, true);  // scale = 1
  Tensor beta = Tensor::Full(Shape(1), 0.0f, true);
  Sum(A2qFakeQuantRows(x, ls, beta)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);  // clipped: STE blocks
  EXPECT_FLOAT_EQ(x.grad()[1], 1.0f);  // in range: STE passes
  EXPECT_NE(beta.grad()[0], 0.0f);
  EXPECT_NE(ls.grad()[0], 0.0f);
}

TEST(A2qSchemeTest, PerNodeQuantizersForNodeComponents) {
  A2qScheme scheme(/*num_nodes=*/6);
  Rng rng(1);
  Tensor x = Tensor::RandomUniform(Shape(6, 4), &rng, -1.0f, 1.0f);
  Tensor y = scheme.Quantize("agg", x, ComponentKind::kAggregate, true);
  EXPECT_NE(y.impl_ptr(), x.impl_ptr());
  // 2 learnable vectors of size n.
  auto params = scheme.SchemeParameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].numel(), 6);
  EXPECT_EQ(scheme.QuantizationParameterCount(), 12);
}

TEST(A2qSchemeTest, WeightsFallBackToQat) {
  A2qScheme scheme(6);
  Rng rng(2);
  Tensor w = Tensor::RandomUniform(Shape(4, 3), &rng, -1.0f, 1.0f);
  scheme.Quantize("w", w, ComponentKind::kWeight, true);
  EXPECT_DOUBLE_EQ(scheme.EffectiveBits("w", 32.0), 8.0);
  EXPECT_EQ(scheme.SchemeParameters().size(), 0u);  // no per-node params added
}

TEST(A2qSchemeTest, PenaltyIsDifferentiableAndPositive) {
  A2qScheme scheme(4);
  Rng rng(3);
  Tensor x = Tensor::RandomUniform(Shape(4, 8), &rng, -1.0f, 1.0f);
  scheme.Quantize("agg", x, ComponentKind::kAggregate, true);
  Tensor penalty = scheme.PenaltyLoss();
  ASSERT_TRUE(penalty.defined());
  EXPECT_GT(penalty.item(), 0.0f);
  auto params = scheme.SchemeParameters();
  for (auto& p : params) p.SetRequiresGrad(true);
  penalty.Backward();
  // Bits logits (beta) must receive gradient from the memory penalty.
  bool beta_has_grad = false;
  for (auto& p : params) {
    if (!p.grad().empty()) {
      for (float g : p.grad()) beta_has_grad |= g != 0.0f;
    }
  }
  EXPECT_TRUE(beta_has_grad);
}

TEST(A2qSchemeTest, MemoryPenaltyDrivesBitsDown) {
  // Optimizing only the penalty must reduce the average bit-width.
  A2qOptions opts;
  opts.memory_lambda = 10.0;  // strong compression pressure for a short test
  A2qScheme scheme(8, opts);
  Rng rng(4);
  Tensor x = Tensor::RandomUniform(Shape(8, 16), &rng, -1.0f, 1.0f);
  scheme.Quantize("agg", x, ComponentKind::kAggregate, true);
  const double bits_before = scheme.AverageNodeBits();
  auto params = scheme.SchemeParameters();
  for (auto& p : params) p.SetRequiresGrad(true);
  Sgd sgd(params, /*lr=*/5.0f);
  for (int step = 0; step < 50; ++step) {
    sgd.ZeroGrad();
    scheme.Quantize("agg", x, ComponentKind::kAggregate, true);
    Tensor penalty = scheme.PenaltyLoss();
    penalty.Backward();
    sgd.Step();
  }
  EXPECT_LT(scheme.AverageNodeBits(), bits_before);
}

TEST(A2qSchemeTest, InitialBitsRespected) {
  A2qOptions opts;
  opts.initial_bits = 6.0;
  A2qScheme scheme(5, opts);
  Rng rng(5);
  Tensor x = Tensor::RandomUniform(Shape(5, 4), &rng, -1.0f, 1.0f);
  scheme.Quantize("agg", x, ComponentKind::kAggregate, true);
  EXPECT_NEAR(scheme.AverageNodeBits(), 6.0, 0.6);
}

TEST(A2qSchemeTest, DifferentRowCountFallsBack) {
  A2qScheme scheme(10);
  Rng rng(6);
  // A [3, f] tensor (e.g. pooled graphs) is not per-node: QAT fallback.
  Tensor x = Tensor::RandomUniform(Shape(3, 4), &rng, -1.0f, 1.0f);
  scheme.Quantize("pool", x, ComponentKind::kAggregate, true);
  EXPECT_EQ(scheme.QuantizationParameterCount(), 0);
}

}  // namespace
}  // namespace mixq
