// Copyright 2026 MixQ-GNN Authors
// Tests for the network front door (src/net/): wire-protocol codec units,
// offline and live byte-flip fuzzing of the framing layer (every corrupt
// frame must come back as a typed error or a clean close — never a crash,
// never a hang; the asan-ubsan CI job runs exactly this), loopback
// end-to-end parity (remote predictions bitwise identical to in-process
// Submit across the fp32 / int8 / pruned / cached routes), wire-level
// overload semantics (deadline expiry, queue overflow, connection limit as
// typed frames on a healthy connection), seeded fault storms on the
// net.read / net.write / net.accept sites, hot bundle rollouts through the
// watched directory, and clean server shutdown as a typed goodbye.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/experiment.h"
#include "engine/inference_engine.h"
#include "engine/model_bundle.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"

namespace mixq {
namespace {

using engine::BatcherOptions;
using engine::CompileModel;
using engine::CompiledModelPtr;
using engine::InferenceEngine;
using engine::Precision;
using engine::PredictRequest;
using engine::PredictResponse;
using net::ClientOptions;
using net::FrameHeader;
using net::FrameType;
using net::MixqClient;
using net::MixqServer;
using net::RemoteReply;
using net::RemoteRequest;
using net::RemoteResponse;
using net::ServerOptions;
using net::WirePredictRequest;
using net::WirePredictResponse;

NodeDataset TinyCitation(uint64_t seed = 1) {
  CitationConfig c;
  c.name = "net-tiny";
  c.num_nodes = 160;
  c.num_classes = 3;
  c.feature_dim = 20;
  c.avg_degree = 3.0;
  c.homophily = 0.85;
  c.train_per_class = 8;
  c.val_count = 30;
  c.test_count = 60;
  c.seed = seed;
  return GenerateCitation(c);
}

std::shared_ptr<ModelArtifact> TrainArtifact(const SchemeRef& scheme,
                                             uint64_t seed = 1) {
  NodeExperimentConfig cfg;
  cfg.hidden = 12;
  cfg.num_layers = 2;
  cfg.dropout = 0.2f;
  cfg.train.epochs = 12;
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(TinyCitation(seed), cfg, scheme);
  spec.seed = seed;
  spec.keep_artifact = true;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  EXPECT_TRUE(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ValueOrDie().artifact;
}

// Artifacts are immutable once trained; train each kind once for the suite.
const std::shared_ptr<ModelArtifact>& Qat8Artifact() {
  static const auto artifact =
      new std::shared_ptr<ModelArtifact>(TrainArtifact(SchemeRef::Qat(8)));
  return *artifact;
}
const std::shared_ptr<ModelArtifact>& Fp32Artifact() {
  static const auto artifact = new std::shared_ptr<ModelArtifact>(
      TrainArtifact(SchemeRef::Fp32(), /*seed=*/2));
  return *artifact;
}

/// Polls `cond` for up to `timeout_ms`; returns its final value.
bool WaitFor(const std::function<bool()>& cond, int timeout_ms = 10000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

/// Fast transfer pacing for every test connection: a wedged transfer turns
/// into a typed kDeadlineExceeded in 2 s, not the production 10 s.
net::IoOptions TestIo(int stall_ms = 2000) {
  net::IoOptions io;
  io.poll_interval = std::chrono::milliseconds(5);
  io.stall_timeout = std::chrono::milliseconds(stall_ms);
  return io;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

// ---- wire codec units -------------------------------------------------------

TEST(WireTest, PredictRequestRoundTrip) {
  WirePredictRequest request;
  request.model = "m";
  request.graph = "g";
  request.node_ids = {0, 7, 151};
  request.precision = Precision::kInt8;
  request.deadline_us = 250000;
  ByteWriter body;
  EncodePredictRequest(request, &body);
  const auto frame = BuildFrame(FrameType::kPredictRequest, 42, body);
  ASSERT_GE(frame.size(), net::kFrameHeaderBytes);

  FrameHeader header;
  ASSERT_TRUE(net::DecodeFrameHeader(frame.data(), &header).ok());
  EXPECT_EQ(header.major, net::kProtocolMajor);
  EXPECT_EQ(header.type, static_cast<uint8_t>(FrameType::kPredictRequest));
  EXPECT_EQ(header.request_id, 42u);
  EXPECT_EQ(header.payload_bytes, frame.size() - net::kFrameHeaderBytes);
  ASSERT_TRUE(net::CheckFramePayload(header,
                                     frame.data() + net::kFrameHeaderBytes,
                                     header.payload_bytes)
                  .ok());
  ByteReader reader(frame.data() + net::kFrameHeaderBytes,
                    header.payload_bytes);
  WirePredictRequest decoded;
  ASSERT_TRUE(net::DecodePredictRequest(&reader, &decoded).ok());
  EXPECT_EQ(decoded.model, "m");
  EXPECT_EQ(decoded.graph, "g");
  EXPECT_EQ(decoded.node_ids, request.node_ids);
  EXPECT_EQ(decoded.precision, Precision::kInt8);
  EXPECT_EQ(decoded.deadline_us, 250000);
}

TEST(WireTest, PredictResponseAndStatusRoundTrip) {
  WirePredictResponse response;
  response.rows = 2;
  response.cols = 3;
  response.data = {1.5f, -2.25f, 0.0f, 3.0f, -0.5f, 7.75f};
  response.node_ids = {4, 9};
  response.precision = Precision::kFp32;
  response.cache_hit = true;
  response.batch_size = 5;
  response.queue_us = 12.5;
  response.server_us = 99.0;
  ByteWriter body;
  EncodePredictResponse(response, &body);
  ByteReader reader(body.buffer().data(), body.size());
  WirePredictResponse decoded;
  ASSERT_TRUE(net::DecodePredictResponse(&reader, &decoded).ok());
  EXPECT_EQ(decoded.data, response.data);
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_FALSE(decoded.pruned);
  EXPECT_EQ(decoded.batch_size, 5);
  EXPECT_EQ(decoded.server_us, 99.0);

  // Status bodies keep the typed code across the wire — the overload
  // contract depends on exactly this.
  for (const Status& status :
       {Status::ResourceExhausted("queue full"),
        Status::DeadlineExceeded("expired"), Status::Unavailable("shed"),
        Status::NotFound("no such model"), Status::OK()}) {
    ByteWriter status_body;
    net::EncodeStatusBody(status, &status_body);
    ByteReader status_reader(status_body.buffer().data(), status_body.size());
    Status back = Status::Internal("sentinel");
    ASSERT_TRUE(net::DecodeStatusBody(&status_reader, &back).ok());
    EXPECT_EQ(back.code(), status.code());
    EXPECT_EQ(back.message(), status.message());
  }
}

TEST(WireTest, HeaderRejectsGarbageFutureMajorAndOversize) {
  ByteWriter body;
  auto frame = BuildFrame(FrameType::kPing, 1, body);
  FrameHeader header;

  auto bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_EQ(net::DecodeFrameHeader(bad_magic.data(), &header).code(),
            StatusCode::kInvalidArgument);

  auto future_major = frame;
  future_major[4] = net::kProtocolMajor + 1;
  EXPECT_EQ(net::DecodeFrameHeader(future_major.data(), &header).code(),
            StatusCode::kNotImplemented);

  // A future MINOR is accepted — append-only evolution.
  auto future_minor = frame;
  future_minor[5] = net::kProtocolMinor + 9;
  EXPECT_TRUE(net::DecodeFrameHeader(future_minor.data(), &header).ok());

  auto oversize = frame;
  oversize[16] = 0xff;  // payload_bytes little-endian
  oversize[17] = 0xff;
  oversize[18] = 0xff;
  oversize[19] = 0xff;
  EXPECT_EQ(net::DecodeFrameHeader(oversize.data(), &header).code(),
            StatusCode::kInvalidArgument);

  auto reserved = frame;
  reserved[7] = 1;
  EXPECT_FALSE(net::DecodeFrameHeader(reserved.data(), &header).ok());
}

TEST(WireTest, TrailingPayloadBytesAreIgnored) {
  // A future minor appends fields; an old peer must decode what it knows.
  WirePredictRequest request;
  request.model = "m";
  request.graph = "g";
  ByteWriter body;
  EncodePredictRequest(request, &body);
  body.PutU64(0xdeadbeef);  // the "future field"
  ByteReader reader(body.buffer().data(), body.size());
  WirePredictRequest decoded;
  EXPECT_TRUE(net::DecodePredictRequest(&reader, &decoded).ok());
  EXPECT_EQ(decoded.model, "m");
}

// Offline fuzz: the exact decode pipeline the server runs, against every
// single-bit corruption and every truncation of a valid frame. The
// invariant is SOFT on outcome (a flip may leave the frame valid) but HARD
// on behavior: a typed Status or a successful decode — no crash, no UB
// (the asan-ubsan job turns violations into failures).
TEST(WireFuzzTest, EveryBitFlipDecodesTypedOrValid) {
  WirePredictRequest request;
  request.model = "model-name";
  request.graph = "graph-name";
  request.node_ids = {1, 2, 3, 4};
  request.precision = Precision::kAuto;
  request.deadline_us = 1000;
  ByteWriter body;
  EncodePredictRequest(request, &body);
  const auto frame = BuildFrame(FrameType::kPredictRequest, 7, body);

  auto decode = [](const std::vector<uint8_t>& bytes) {
    if (bytes.size() < net::kFrameHeaderBytes) {
      return Status::OutOfRange("short frame");
    }
    FrameHeader header;
    MIXQ_RETURN_NOT_OK(net::DecodeFrameHeader(bytes.data(), &header));
    const size_t have = bytes.size() - net::kFrameHeaderBytes;
    if (have < header.payload_bytes) return Status::OutOfRange("truncated");
    MIXQ_RETURN_NOT_OK(net::CheckFramePayload(
        header, bytes.data() + net::kFrameHeaderBytes, header.payload_bytes));
    ByteReader reader(bytes.data() + net::kFrameHeaderBytes,
                      header.payload_bytes);
    WirePredictRequest decoded;
    return net::DecodePredictRequest(&reader, &decoded);
  };
  ASSERT_TRUE(decode(frame).ok());

  for (size_t i = 0; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = frame;
      mutated[i] ^= static_cast<uint8_t>(1u << bit);
      const Status status = decode(mutated);
      if (!status.ok()) {
        EXPECT_FALSE(status.message().empty());
      }
    }
  }
  for (size_t len = 0; len <= frame.size(); ++len) {
    decode(std::vector<uint8_t>(frame.begin(), frame.begin() + len));
  }
}

TEST(WireFuzzTest, ResponseAndStatusBodiesSurviveBitFlips) {
  WirePredictResponse response;
  response.rows = 3;
  response.cols = 2;
  response.data = {1, 2, 3, 4, 5, 6};
  response.node_ids = {0, 1, 2};
  ByteWriter body;
  EncodePredictResponse(response, &body);
  for (size_t i = 0; i < body.size(); ++i) {
    auto mutated = body.buffer();
    mutated[i] ^= 0x55;
    ByteReader reader(mutated.data(), mutated.size());
    WirePredictResponse decoded;
    net::DecodePredictResponse(&reader, &decoded);  // typed or valid, no UB
  }
  ByteWriter status_body;
  net::EncodeStatusBody(Status::Unavailable("shed"), &status_body);
  for (size_t i = 0; i < status_body.size(); ++i) {
    auto mutated = status_body.buffer();
    mutated[i] ^= 0xff;
    ByteReader reader(mutated.data(), mutated.size());
    Status decoded;
    net::DecodeStatusBody(&reader, &decoded);
  }
}

// ---- loopback fixture -------------------------------------------------------

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultInjector::Global().Disarm();
    fault::FaultInjector::Global().SetDelay(std::chrono::milliseconds(25));
  }
  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    fault::FaultInjector::Global().Disarm();
    fault::FaultInjector::Global().SetDelay(std::chrono::milliseconds(25));
  }

  /// Engine with the qat8 model as "m" and its graph as "g", behind a
  /// loopback server on an ephemeral port.
  void StartServer(BatcherOptions options = BatcherOptions(),
                   ServerOptions server_options = ServerOptions()) {
    engine_ = std::make_unique<InferenceEngine>(options);
    CompiledModelPtr model = CompileModel(*Qat8Artifact()).ValueOrDie();
    ASSERT_TRUE(engine_->RegisterModel("m", model).ok());
    ASSERT_TRUE(engine_
                    ->RegisterGraph("g", Qat8Artifact()->features,
                                    Qat8Artifact()->op)
                    .ok());
    server_options.io = TestIo();
    server_ = std::make_unique<MixqServer>(engine_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  Result<MixqClient> Connect(int stall_ms = 2000) {
    ClientOptions options;
    options.io = TestIo(stall_ms);
    return MixqClient::Connect("127.0.0.1", server_->port(), options);
  }

  static RemoteRequest Remote(std::vector<int64_t> node_ids = {},
                              Precision precision = Precision::kFp32) {
    RemoteRequest request;
    request.model = "m";
    request.graph = "g";
    request.node_ids = std::move(node_ids);
    request.precision = precision;
    return request;
  }

  Result<PredictResponse> InProcess(std::vector<int64_t> node_ids = {},
                                    Precision precision = Precision::kFp32) {
    PredictRequest request;
    request.model = "m";
    request.graph = "g";
    request.node_ids = std::move(node_ids);
    request.precision = precision;
    return engine_->Submit(std::move(request)).get();
  }

  std::unique_ptr<InferenceEngine> engine_;
  std::unique_ptr<MixqServer> server_;
};

// Satellite 4: remote predictions are BITWISE identical to in-process
// Submit on every serving route — pruned, full fp32, cached, and int8.
TEST_F(NetTest, LoopbackParityAcrossAllRoutes) {
  BatcherOptions options;
  options.pruned_min_graph_nodes = 1;  // let the tiny graph take pruned
  StartServer(options);
  auto connected = Connect();
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  MixqClient client = connected.MoveValueOrDie();

  // Pruned route first (an empty cache is what routes it pruned).
  auto pruned = client.Predict(Remote({5}));
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_TRUE(pruned.ValueOrDie().pruned);
  EXPECT_GT(pruned.ValueOrDie().frontier_rows, 0);

  // Full fp32 forward, against the in-process response.
  auto in_process_full = InProcess();
  ASSERT_TRUE(in_process_full.ok());
  auto remote_full = client.Predict(Remote());
  ASSERT_TRUE(remote_full.ok()) << remote_full.status().ToString();
  EXPECT_TRUE(BitwiseEqual(remote_full.ValueOrDie().rows,
                           in_process_full.ValueOrDie().rows));
  EXPECT_EQ(remote_full.ValueOrDie().precision, Precision::kFp32);

  // The pruned row must match the full forward's row bitwise.
  for (int64_t c = 0; c < in_process_full.ValueOrDie().rows.cols(); ++c) {
    EXPECT_EQ(pruned.ValueOrDie().rows.at(0, c),
              in_process_full.ValueOrDie().rows.at(5, c));
  }

  // Cached route: the repeat full query is a cache hit, still bitwise equal.
  auto cached = client.Predict(Remote());
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached.ValueOrDie().cache_hit);
  EXPECT_TRUE(BitwiseEqual(cached.ValueOrDie().rows,
                           in_process_full.ValueOrDie().rows));

  // Int8 route.
  auto in_process_int8 = InProcess({}, Precision::kInt8);
  ASSERT_TRUE(in_process_int8.ok());
  auto remote_int8 = client.Predict(Remote({}, Precision::kInt8));
  ASSERT_TRUE(remote_int8.ok()) << remote_int8.status().ToString();
  EXPECT_EQ(remote_int8.ValueOrDie().precision, Precision::kInt8);
  EXPECT_TRUE(BitwiseEqual(remote_int8.ValueOrDie().rows,
                           in_process_int8.ValueOrDie().rows));

  // Unknown names come back typed, and the connection survives them.
  RemoteRequest unknown = Remote();
  unknown.model = "nope";
  EXPECT_EQ(client.Predict(unknown).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(client.broken());
  EXPECT_TRUE(client.Predict(Remote()).ok());
}

// Pipelined remote clients coalesce in the micro-batcher exactly like
// in-process Submit callers: one shared forward serves many frames.
TEST_F(NetTest, PipelinedRequestsCoalesce) {
  BatcherOptions options;
  options.enable_cache = false;
  options.enable_pruning = false;
  StartServer(options);
  auto connected = Connect();
  ASSERT_TRUE(connected.ok());
  MixqClient client = connected.MoveValueOrDie();

  constexpr int kBurst = 24;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kBurst; ++i) {
    uint64_t id = 0;
    ASSERT_TRUE(client.Send(Remote({i % 160}), &id).ok());
    ids.push_back(id);
  }
  EXPECT_EQ(client.outstanding(), kBurst);
  int64_t max_batch = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto received = client.Receive();
    ASSERT_TRUE(received.ok()) << received.status().ToString();
    RemoteReply reply = received.MoveValueOrDie();
    EXPECT_EQ(reply.request_id, ids[i]) << "replies must arrive in order";
    ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
    max_batch = std::max(max_batch, reply.response.batch_size);
  }
  EXPECT_EQ(client.outstanding(), 0);
  // The burst lands while the first forward runs; the rest coalesce.
  EXPECT_GT(max_batch, 1);
  EXPECT_LT(engine_->GetStats().batcher.forwards, kBurst);
}

// Satellite 4 (overload half): deadline expiry and queue overflow travel as
// typed kError frames on a connection that stays healthy.
TEST_F(NetTest, DeadlineAndOverflowAreTypedWireErrors) {
  BatcherOptions options;
  options.enable_cache = false;
  options.enable_pruning = false;
  options.queue_capacity = 2;
  StartServer(options);
  auto connected = Connect(5000);
  ASSERT_TRUE(connected.ok());
  MixqClient client = connected.MoveValueOrDie();

  // One scheduled slow forward stalls the dispatcher while the burst lands.
  fault::FaultInjector::Global().ArmSite("plan.forward.delay",
                                         fault::SiteSchedule{1.0, 1, 0});
  fault::FaultInjector::Global().SetDelay(std::chrono::milliseconds(400));

  uint64_t slow_id = 0;
  ASSERT_TRUE(client.Send(Remote(), &slow_id).ok());
  ASSERT_TRUE(WaitFor([&] {
    InferenceEngine::Stats s = engine_->GetStats();
    return s.batcher.in_dispatch >= 1 && s.batcher.queue_depth == 0;
  }));

  // Queued behind the stall: one request that expires first, one that
  // survives, and two past the admission bound.
  RemoteRequest expiring = Remote({1});
  expiring.deadline_us = 50000;
  uint64_t expiring_id = 0, ok_id = 0, over1_id = 0, over2_id = 0;
  ASSERT_TRUE(client.Send(expiring, &expiring_id).ok());
  ASSERT_TRUE(client.Send(Remote({2}), &ok_id).ok());
  ASSERT_TRUE(client.Send(Remote({3}), &over1_id).ok());
  ASSERT_TRUE(client.Send(Remote({4}), &over2_id).ok());

  std::map<uint64_t, Status> outcomes;
  for (int i = 0; i < 5; ++i) {
    auto received = client.Receive();
    ASSERT_TRUE(received.ok()) << received.status().ToString();
    RemoteReply reply = received.MoveValueOrDie();
    outcomes[reply.request_id] = reply.status;
  }
  EXPECT_TRUE(outcomes.at(slow_id).ok()) << outcomes.at(slow_id).ToString();
  EXPECT_EQ(outcomes.at(expiring_id).code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(outcomes.at(ok_id).ok()) << outcomes.at(ok_id).ToString();
  EXPECT_EQ(outcomes.at(over1_id).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(outcomes.at(over2_id).code(), StatusCode::kResourceExhausted);

  // The overloaded CONNECTION was never punished: it serves again.
  EXPECT_FALSE(client.broken());
  EXPECT_TRUE(client.Predict(Remote({0})).ok());
}

// Past max_connections the server answers a typed kGoodbye instead of
// dropping the socket; when a slot frees, new connections serve again.
TEST_F(NetTest, ConnectionLimitIsATypedRejection) {
  ServerOptions server_options;
  server_options.max_connections = 1;
  StartServer(BatcherOptions(), server_options);

  auto first = Connect();
  ASSERT_TRUE(first.ok());
  MixqClient inside = first.MoveValueOrDie();
  ASSERT_TRUE(inside.Ping().ok());

  auto second = Connect();
  ASSERT_TRUE(second.ok());  // TCP accept succeeds; the protocol rejects
  MixqClient rejected = second.MoveValueOrDie();
  const Status status = rejected.Ping();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(rejected.broken());

  inside.Close();
  ASSERT_TRUE(WaitFor([&] {
    return server_->GetStats().connections_active == 0;
  }));
  auto third = Connect();
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third.ValueOrDie().Ping().ok());
}

TEST_F(NetTest, StatsEndpointServesEngineAndTransportCounters) {
  StartServer();
  auto connected = Connect();
  ASSERT_TRUE(connected.ok());
  MixqClient client = connected.MoveValueOrDie();
  ASSERT_TRUE(client.Predict(Remote({0})).ok());
  auto stats = client.StatsJson();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const std::string& json = stats.ValueOrDie();
  EXPECT_NE(json.find("\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"per_model\""), std::string::npos);
  EXPECT_NE(json.find("\"predict_requests\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"connections_active\": 1"), std::string::npos);
}

// A body that decodes to garbage behind a VALID checksum is a per-request
// kError — the stream is intact, so the connection must survive.
TEST_F(NetTest, MalformedBodyBehindValidCrcKeepsConnection) {
  StartServer();
  auto raw = net::TcpConnect("127.0.0.1", server_->port(),
                             std::chrono::milliseconds(2000), TestIo());
  ASSERT_TRUE(raw.ok());
  net::TcpConnection conn = raw.MoveValueOrDie();

  ByteWriter body;
  body.PutU8(0xab);  // not a decodable PredictRequest
  auto frame = net::BuildFrame(FrameType::kPredictRequest, 9, body);
  ASSERT_TRUE(conn.WriteAll(frame.data(), frame.size()).ok());

  uint8_t header_bytes[net::kFrameHeaderBytes];
  ASSERT_TRUE(conn.ReadFull(header_bytes, sizeof(header_bytes)).ok());
  FrameHeader header;
  ASSERT_TRUE(net::DecodeFrameHeader(header_bytes, &header).ok());
  EXPECT_EQ(header.type, static_cast<uint8_t>(FrameType::kError));
  EXPECT_EQ(header.request_id, 9u);
  std::vector<uint8_t> payload(header.payload_bytes);
  ASSERT_TRUE(conn.ReadFull(payload.data(), payload.size()).ok());
  ASSERT_TRUE(
      net::CheckFramePayload(header, payload.data(), payload.size()).ok());
  ByteReader reader(payload.data(), payload.size());
  Status remote;
  ASSERT_TRUE(net::DecodeStatusBody(&reader, &remote).ok());
  EXPECT_FALSE(remote.ok());

  // Same connection, now a well-formed request: it serves.
  WirePredictRequest request;
  request.model = "m";
  request.graph = "g";
  request.node_ids = {0};
  ByteWriter good_body;
  EncodePredictRequest(request, &good_body);
  frame = net::BuildFrame(FrameType::kPredictRequest, 10, good_body);
  ASSERT_TRUE(conn.WriteAll(frame.data(), frame.size()).ok());
  ASSERT_TRUE(conn.ReadFull(header_bytes, sizeof(header_bytes)).ok());
  ASSERT_TRUE(net::DecodeFrameHeader(header_bytes, &header).ok());
  EXPECT_EQ(header.type, static_cast<uint8_t>(FrameType::kPredictResponse));
  std::vector<uint8_t> rows(header.payload_bytes);
  ASSERT_TRUE(conn.ReadFull(rows.data(), rows.size()).ok());
}

// Satellite 1, live half: byte-flipped and truncated frames against a real
// server. Every mutated connection ends in a typed reply or a clean close —
// and the server serves an honest client afterwards.
TEST_F(NetTest, LiveByteFlipFramesNeverWedgeTheServer) {
  StartServer();
  WirePredictRequest request;
  request.model = "m";
  request.graph = "g";
  request.node_ids = {3};
  ByteWriter body;
  EncodePredictRequest(request, &body);
  const auto frame = net::BuildFrame(FrameType::kPredictRequest, 1, body);

  auto drive = [&](const std::vector<uint8_t>& bytes) {
    auto raw = net::TcpConnect("127.0.0.1", server_->port(),
                               std::chrono::milliseconds(2000), TestIo(500));
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    net::TcpConnection conn = raw.MoveValueOrDie();
    if (!bytes.empty()) {
      ASSERT_TRUE(conn.WriteAll(bytes.data(), bytes.size()).ok());
    }
    conn.ShutdownWrite();  // our whole stream; the server sees EOF after it
    // Drain whatever the server answers (typed frames) until it closes.
    // The 500 ms stall budget turns "server wedged" into a test failure.
    uint8_t header_bytes[net::kFrameHeaderBytes];
    for (int replies = 0; replies < 4; ++replies) {
      const Status status = conn.ReadFull(header_bytes, sizeof(header_bytes));
      if (!status.ok()) {
        EXPECT_NE(status.code(), StatusCode::kDeadlineExceeded)
            << "server went silent instead of answering or closing";
        return;
      }
      FrameHeader header;
      ASSERT_TRUE(net::DecodeFrameHeader(header_bytes, &header).ok())
          << "server emitted an invalid frame";
      std::vector<uint8_t> payload(header.payload_bytes);
      if (!payload.empty()) {
        ASSERT_TRUE(conn.ReadFull(payload.data(), payload.size()).ok());
      }
      ASSERT_TRUE(
          net::CheckFramePayload(header, payload.data(), payload.size()).ok());
    }
  };

  // One bit flipped, at every byte of the header and a stride of the body.
  for (size_t i = 0; i < frame.size();
       i += (i < net::kFrameHeaderBytes ? 1 : 3)) {
    auto mutated = frame;
    mutated[i] ^= static_cast<uint8_t>(1u << (i % 8));
    drive(mutated);
  }
  // Truncations, including an empty connection.
  for (size_t len : {size_t(0), size_t(1), size_t(12), size_t(23), size_t(24),
                     net::kFrameHeaderBytes + 2}) {
    drive(std::vector<uint8_t>(frame.begin(), frame.begin() + len));
  }
  // Pure garbage.
  drive(std::vector<uint8_t>(64, 0xab));

  auto connected = Connect();
  ASSERT_TRUE(connected.ok());
  MixqClient client = connected.MoveValueOrDie();
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Predict(Remote({0})).ok());
  EXPECT_GT(server_->GetStats().protocol_errors, 0);
}

// Satellite 2: a seeded fault storm on the socket sites. Both sides of the
// loopback hit net.read / net.write (and the acceptor net.accept), so calls
// die in many places — but every one returns TYPED, and when the storm
// stops the same server serves again.
TEST_F(NetTest, SocketFaultStormLeavesServerServing) {
  BatcherOptions options;
  options.enable_cache = false;
  StartServer(options);

  for (const uint64_t seed : {uint64_t(1), uint64_t(2), uint64_t(3)}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fault::FaultInjector::Global().Arm(seed, 0.0);  // seed set, sites clean
    fault::FaultInjector::Global().ArmSite("net.read",
                                           fault::SiteSchedule{0.02, -1, 0});
    fault::FaultInjector::Global().ArmSite("net.write",
                                           fault::SiteSchedule{0.02, -1, 0});
    fault::FaultInjector::Global().ArmSite("net.accept",
                                           fault::SiteSchedule{0.2, -1, 0});

    int served = 0, failed = 0;
    for (int round = 0; round < 6; ++round) {
      auto connected = Connect(1000);
      if (!connected.ok()) {
        EXPECT_FALSE(connected.status().message().empty());
        ++failed;
        continue;
      }
      MixqClient client = connected.MoveValueOrDie();
      for (int i = 0; i < 8; ++i) {
        auto result = client.Predict(Remote({(round * 8 + i) % 160}));
        if (result.ok()) {
          ++served;
        } else {
          // The invariant: typed, never a hang (the stall budget above
          // bounds every read) and never a crash.
          EXPECT_NE(result.status().code(), StatusCode::kOk);
          EXPECT_FALSE(result.status().message().empty());
          ++failed;
        }
        if (client.broken()) break;
      }
    }
    EXPECT_GT(served + failed, 0);

    // Storm over: the SAME server process serves a fresh client.
    fault::FaultInjector::Global().Disarm();
    ASSERT_TRUE(WaitFor([&] {
      auto connected = Connect();
      if (!connected.ok()) return false;
      MixqClient client = connected.MoveValueOrDie();
      return client.Predict(Remote({0})).ok();
    }));
  }
}

// Tentpole rollout path: bundles dropped into the watched directory are
// served under their file stem with zero downtime; a corrupt drop is
// counted and ignored; an overwrite hot-swaps (registry version bump).
TEST_F(NetTest, WatchedBundleDirectoryHotReloads) {
  StartServer();
  char dir_template[] = "/tmp/mixq_net_watch_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;

  CompiledModelPtr qat = CompileModel(*Qat8Artifact()).ValueOrDie();
  ASSERT_TRUE(engine::SaveBundle(*qat, dir + "/hot.mqb").ok());
  ASSERT_TRUE(engine::SaveGraph(Qat8Artifact()->features, Qat8Artifact()->op,
                                dir + "/hotgraph.mqb")
                  .ok());
  {
    std::ofstream bad(dir + "/corrupt.mqb", std::ios::binary);
    bad << "this is not a bundle";
  }

  ASSERT_TRUE(
      server_->StartWatching(dir, std::chrono::milliseconds(50)).ok());
  ASSERT_TRUE(WaitFor([&] {
    const auto models = engine_->ListModels();
    return models.count("hot") == 1 && engine_->ListGraphs().count("hotgraph");
  }));
  const uint64_t version_before = engine_->ListModels().at("hot").version;
  EXPECT_GE(server_->GetStats().watcher_failures, 1);

  auto connected = Connect();
  ASSERT_TRUE(connected.ok());
  MixqClient client = connected.MoveValueOrDie();
  RemoteRequest request;
  request.model = "hot";
  request.graph = "hotgraph";
  ASSERT_TRUE(client.Predict(request).ok());

  // Roll out a replacement under the same name: swapped in place, serving
  // uninterrupted, version bumped (so caches cannot serve stale logits).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  CompiledModelPtr fp32 = CompileModel(*Fp32Artifact()).ValueOrDie();
  ASSERT_TRUE(engine::SaveBundle(*fp32, dir + "/hot.mqb").ok());
  ASSERT_TRUE(WaitFor([&] {
    return engine_->ListModels().at("hot").version > version_before;
  }));
  auto after = client.Predict(request);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(BitwiseEqual(
      after.ValueOrDie().rows,
      fp32->Predict(Qat8Artifact()->features, Qat8Artifact()->op)
          .ValueOrDie()));
}

// Shutdown is announced: a client with a request in flight gets a typed
// goodbye (or its owed response), never a silent hang.
TEST_F(NetTest, ShutdownIsTypedNeverSilent) {
  StartServer();
  auto connected = Connect();
  ASSERT_TRUE(connected.ok());
  MixqClient client = connected.MoveValueOrDie();
  ASSERT_TRUE(client.Predict(Remote({0})).ok());

  server_->Shutdown();
  const Status status = client.Ping();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(status.message().empty());
  EXPECT_TRUE(client.broken());
}

}  // namespace
}  // namespace mixq
