// Copyright 2026 MixQ-GNN Authors
// Quantized integer inference with Theorem 1: quantize a GCN layer's inputs,
// weights and adjacency, run the message pass entirely in integer arithmetic
// (FusedQuantizedGemm + FusedQuantizedSpmm), and verify the outputs against
// the float fake-quantization reference — the deployment path the paper's
// quantized message passing schema enables.
//
//   ./examples/quantized_inference
#include <cmath>
#include <cstdio>

#include "graph/generators.h"
#include "quant/fused_mp.h"
#include "sparse/spmm.h"
#include "tensor/gemm.h"

using namespace mixq;

int main() {
  // A small citation graph and a random GCN weight matrix.
  CitationConfig config;
  config.num_nodes = 500;
  config.num_classes = 4;
  config.feature_dim = 32;
  config.avg_degree = 3.0;
  config.val_count = 50;
  config.test_count = 100;
  config.seed = 7;
  NodeDataset dataset = GenerateCitation(config);
  const Graph& g = dataset.graph;
  CsrMatrix a_hat = GcnNormalize(g.Adjacency());
  Rng rng(1);
  Tensor theta = Tensor::GlorotUniform(g.feature_dim(), 16, &rng, false);

  std::printf("graph: %lld nodes, %lld stored adjacency entries\n",
              static_cast<long long>(g.num_nodes),
              static_cast<long long>(a_hat.nnz()));

  // Calibrate per-tensor affine parameters (Eq. 3) from the data ranges.
  QuantParams px = ParamsFromRange(0.0f, 1.0f, 8, /*symmetric=*/false);
  QuantParams pw = ParamsFromRange(-0.4f, 0.4f, 8, true);
  QuantParams pxw = ParamsFromRange(-1.0f, 1.0f, 8, true);
  QuantParams pa = ParamsFromRange(0.0f, 1.0f, 8, true);
  QuantParams py = ParamsFromRange(-2.0f, 2.0f, 16, true);

  // Quantize every operand once (deployment-time preprocessing).
  QuantizedDense qx = QuantizeDense(g.features, px);
  QuantizedDense qw = QuantizeDense(theta, pw);
  QuantizedSparse qa = QuantizeCsr(a_hat, pa);

  // Integer-only layer: Qxw = Q(X·Θ) via integer GEMM, then
  // Qy = Q(Â · XΘ) via the Theorem-1 fused integer SpMM.
  QuantizedDense qxw = FusedQuantizedGemm(qx, qw, pxw);
  QuantizedDense qy = FusedQuantizedSpmm(a_hat, qa, qxw, py);

  // Float reference of the same quantized pipeline.
  QuantizedDense ref = ReferenceQuantizedSpmm(a_hat, qa, qxw, py);
  int64_t exact = 0, off_by_one = 0, worse = 0;
  for (size_t i = 0; i < qy.q.size(); ++i) {
    const int d = std::abs(qy.q[i] - ref.q[i]);
    if (d == 0) {
      ++exact;
    } else if (d == 1) {
      ++off_by_one;
    } else {
      ++worse;
    }
  }
  std::printf("\nTheorem-1 fused integer output vs float reference:\n");
  std::printf("  exact:      %lld / %zu\n", static_cast<long long>(exact),
              qy.q.size());
  std::printf("  rounding ties (+-1): %lld\n", static_cast<long long>(off_by_one));
  std::printf("  mismatches: %lld\n", static_cast<long long>(worse));

  // And against the true FP32 message pass — quantization noise only.
  std::vector<float> xw_true(static_cast<size_t>(g.num_nodes) * 16);
  {
    std::vector<float> y_true(static_cast<size_t>(g.num_nodes) * 16);
    GemmNN(g.features.data().data(), theta.data().data(), xw_true.data(),
           g.num_nodes, g.feature_dim(), 16);
    SpmmRaw(a_hat, xw_true.data(), 16, y_true.data());
    auto deq = qy.Dequantize();
    double max_err = 0.0;
    for (size_t i = 0; i < deq.size(); ++i) {
      max_err = std::max(max_err,
                         static_cast<double>(std::fabs(deq[i] - y_true[i])));
    }
    std::printf("\nmax |integer-path output − FP32 output| = %.4f "
                "(INT8 operand rounding noise)\n", max_err);
  }
  return worse == 0 ? 0 : 1;
}
