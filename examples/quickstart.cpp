// Copyright 2026 MixQ-GNN Authors
// Quickstart: train an FP32 2-layer GCN on a citation-network dataset, then
// quantize it with a MixQ bit-width search and compare accuracy and BitOPs —
// all through the Experiment facade and the string-keyed scheme registry.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/experiment.h"

using namespace mixq;

namespace {

// Validates and runs one spec, aborting with the validation message (an
// example has no better error path).
ExperimentResult RunOrDie(ExperimentSpec spec) {
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  MIXQ_CHECK(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  MIXQ_CHECK(report.ok()) << report.status().ToString();
  return std::move(report.ValueOrDie().node);
}

}  // namespace

int main() {
  // 1. A dataset. CoraLike() mirrors Cora's statistics (2708 nodes,
  //    7 classes, Planetoid splits); see graph/generators.h for the zoo.
  CitationConfig config;
  config.name = "quickstart-citation";
  config.num_nodes = 800;
  config.num_classes = 5;
  config.feature_dim = 64;
  config.avg_degree = 2.5;
  config.homophily = 0.82;
  config.val_count = 150;
  config.test_count = 300;
  config.seed = 42;
  NodeDataset dataset = GenerateCitation(config);
  std::printf("dataset: %s — %lld nodes, %lld edges, %lld classes\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.graph.num_nodes),
              static_cast<long long>(dataset.graph.num_edges()),
              static_cast<long long>(dataset.graph.num_classes));

  // 2. Experiment configuration: 2-layer GCN, hidden 64 (the paper's setup).
  NodeExperimentConfig experiment;
  experiment.model = NodeModelKind::kGcn;
  experiment.hidden = 64;
  experiment.num_layers = 2;
  experiment.train.epochs = 80;
  experiment.train.lr = 0.01f;

  // 3. FP32 baseline. Schemes are referenced by registry name — "fp32" here;
  //    SchemeRef::Fp32() is sugar for SchemeRef("fp32").
  ExperimentResult fp32 = RunOrDie(
      ExperimentSpec::NodeClassification(dataset, experiment, SchemeRef::Fp32()));
  std::printf("\nFP32   : accuracy %.1f%%, %.2f GBitOPs (32-bit everywhere)\n",
              fp32.test_metric * 100.0, fp32.gbitops);

  // 4. MixQ: search bit-widths over {2,4,8}, then train the selected
  //    quantized architecture (Algorithm 1 + per-component QAT).
  SchemeRef mixq = SchemeRef::MixQ(/*lambda=*/0.05, {2, 4, 8});
  mixq.params.SetInt("search_epochs", 60);
  ExperimentResult q =
      RunOrDie(ExperimentSpec::NodeClassification(dataset, experiment, mixq));
  std::printf("MixQ   : accuracy %.1f%%, %.2f GBitOPs at %.2f average bits\n",
              q.test_metric * 100.0, q.gbitops, q.avg_bits);
  std::printf("         BitOPs reduction vs FP32: %.1fx\n",
              fp32.gbitops / q.gbitops);

  std::printf("\nselected bit-widths per component:\n");
  for (const auto& [component, bits] : q.selected_bits) {
    std::printf("  %-18s -> INT%d\n", component.c_str(), bits);
  }
  return 0;
}
