// Copyright 2026 MixQ-GNN Authors
// Driving the relaxed search directly: build a RelaxedMixQScheme, train it
// together with a GraphSAGE model, inspect the per-component softmax(α)
// weights as they converge, and extract the bit-width sequence S — the
// low-level machinery behind the registry's "mixq" family (what the
// Experiment facade runs when given SchemeRef::MixQ). At the end, the same
// custom search space is registered as a first-class named scheme.
//
//   ./examples/custom_search_space
#include <cstdio>

#include "core/relaxed_scheme.h"
#include "graph/generators.h"
#include "quant/scheme_registry.h"
#include "nn/models.h"
#include "train/metrics.h"
#include "train/trainer.h"

using namespace mixq;

int main() {
  CitationConfig config;
  config.num_nodes = 600;
  config.num_classes = 4;
  config.feature_dim = 48;
  config.avg_degree = 3.0;
  config.val_count = 120;
  config.test_count = 240;
  config.seed = 11;
  NodeDataset dataset = GenerateCitation(config);
  Graph graph = SampleNeighbors(dataset.graph, /*max_degree=*/10, /*seed=*/5);
  auto op = MakeOperator(RowNormalize(graph.Adjacency()));

  // A custom, asymmetric search space: INT3 / INT6 / INT8.
  RelaxedOptions options;
  options.bit_options = {3, 6, 8};
  options.lambda = 0.05;
  RelaxedMixQScheme scheme(options);

  Rng rng(1);
  SageNet net({graph.feature_dim(), 32, graph.num_classes, 2, 0.3f}, &rng);

  TrainLoopConfig loop;
  loop.epochs = 60;
  loop.lr = 0.02f;
  TrainResult result = RunTrainingLoop(
      loop, &net, &scheme,
      [&](Rng* drop) { return net.Forward(graph.features, op, &scheme, drop); },
      [&](const Tensor& logits) {
        return CrossEntropyMasked(logits, graph.labels, graph.train_mask);
      },
      [&](const Tensor& logits, bool is_test) {
        return Accuracy(logits, graph.labels,
                        is_test ? graph.test_mask : graph.val_mask);
      });

  std::printf("relaxed search finished: val %.1f%%, test %.1f%%\n\n",
              result.best_val_metric * 100.0, result.test_at_best_val * 100.0);
  std::printf("%-20s %8s %8s %8s   selected\n", "component", "w(3b)", "w(6b)",
              "w(8b)");
  auto selected = scheme.SelectedBits();
  for (const std::string& id : scheme.ComponentIds()) {
    auto w = scheme.AlphaWeights(id);
    std::printf("%-20s %8.3f %8.3f %8.3f   INT%d\n", id.c_str(), w[0], w[1], w[2],
                selected.at(id));
  }

  // The sequence S then instantiates a fixed quantized architecture:
  PerComponentScheme fixed(selected, /*default_bits=*/8);
  std::printf("\ninstantiated PerComponentScheme with %zu searched components.\n",
              fixed.assignment().size());

  // Finally, publish the searched assignment as a first-class named scheme:
  // from now on any ExperimentSpec in this process can reference it as
  // SchemeRef("sage-368-selected") — no core code knows it exists.
  Status st = SchemeRegistry::Global().Register(
      "sage-368-selected",
      std::make_shared<const LambdaSchemeFamily>(
          [selected](const SchemeParams&,
                     const SchemeBuildContext&) -> Result<QuantSchemePtr> {
            return QuantSchemePtr(
                std::make_shared<PerComponentScheme>(selected, /*default=*/8));
          },
          [](const SchemeParams&) { return std::string("MixQ{3,6,8}-selected"); }));
  std::printf("registered scheme 'sage-368-selected': %s (label %s)\n",
              st.ToString().c_str(),
              SchemeRegistry::Global().Label(SchemeRef("sage-368-selected")).c_str());
  return 0;
}
