// Copyright 2026 MixQ-GNN Authors
// Offline deployment: a fresh serving process with ZERO training code paths.
//
// mixq_compile (tools/) trained a model in some other process — possibly on
// another machine — and left behind a model bundle, a graph bundle, and a
// logit digest. This binary loads both bundles into an InferenceEngine,
// proves bitwise parity with the compiling process via the digest, and then
// serves asynchronous Submit traffic: batched single-node requests, cached
// repeat full-graph queries, and (when the graph is large enough)
// receptive-field-pruned point lookups — the full serving surface against a
// model whose training pipeline this process never linked.
//
//   ./examples/offline_deploy model.mqb graph.mqb [model.digest]
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/binary_io.h"
#include "engine/inference_engine.h"
#include "engine/model_bundle.h"

using namespace mixq;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s model.mqb graph.mqb [model.digest]\n",
                 argv[0]);
    return 2;
  }

  // ---- load the frozen artifacts -------------------------------------------
  engine::InferenceEngine serving;
  Status model_loaded = serving.LoadModelFromFile("bundled", argv[1]);
  MIXQ_CHECK(model_loaded.ok()) << model_loaded.ToString();
  Status graph_loaded = serving.LoadGraphFromFile("graph", argv[2]);
  MIXQ_CHECK(graph_loaded.ok()) << graph_loaded.ToString();

  for (const auto& [name, m] : serving.ListModels()) {
    std::printf("model '%s' v%llu: %s, %lld features -> %lld logits, "
                "%lld params, int8=%s\n",
                name.c_str(), static_cast<unsigned long long>(m.version),
                m.info.scheme_label.c_str(),
                static_cast<long long>(m.info.in_features),
                static_cast<long long>(m.info.out_dim),
                static_cast<long long>(m.info.param_count),
                m.info.lowered_int8 ? "yes" : "no");
  }
  for (const auto& [name, g] : serving.ListGraphs()) {
    std::printf("graph '%s' v%llu: %lld nodes, %lld nnz, %lld features/node\n",
                name.c_str(), static_cast<unsigned long long>(g.version),
                static_cast<long long>(g.nodes), static_cast<long long>(g.nnz),
                static_cast<long long>(g.feature_dim));
  }
  const engine::CompiledModelInfo info =
      serving.ListModels().at("bundled").info;

  auto submit = [&](std::vector<int64_t> node_ids, engine::Precision precision) {
    engine::PredictRequest request;
    request.model = "bundled";
    request.graph = "graph";
    request.node_ids = std::move(node_ids);
    request.precision = precision;
    Result<engine::PredictResponse> response =
        serving.Submit(std::move(request)).get();
    MIXQ_CHECK(response.ok()) << response.status().ToString();
    return response.MoveValueOrDie();
  };

  // ---- cross-process parity: digest of the full-graph logits ---------------
  engine::PredictResponse full = submit({}, engine::Precision::kFp32);
  const std::vector<float>& logits = full.rows.data();
  const uint64_t fp32_digest =
      Fnv1a64(logits.data(), logits.size() * sizeof(float));
  std::printf("fp32 logits: %lld rows, %s",
              static_cast<long long>(full.rows.rows()),
              engine::FormatLogitDigestLine("digest fp32", fp32_digest).c_str());

  uint64_t int8_digest = 0;
  if (info.lowered_int8) {
    engine::PredictResponse quant = submit({}, engine::Precision::kInt8);
    const std::vector<float>& q = quant.rows.data();
    int8_digest = Fnv1a64(q.data(), q.size() * sizeof(float));
    std::printf("int8 logits: %lld rows, %s",
                static_cast<long long>(quant.rows.rows()),
                engine::FormatLogitDigestLine("digest int8", int8_digest).c_str());
  }

  if (argc > 3) {
    std::vector<uint8_t> digest_bytes;
    Status read = ReadFileBytes(argv[3], &digest_bytes);
    MIXQ_CHECK(read.ok()) << read.ToString();
    const std::string text(digest_bytes.begin(), digest_bytes.end());
    uint64_t want_fp32 = 0, want_int8 = 0;
    MIXQ_CHECK(engine::FindLogitDigest(text, "fp32", &want_fp32))
        << "digest file has no fp32 line";
    MIXQ_CHECK(want_fp32 == fp32_digest)
        << "fp32 logits diverged from the compiling process";
    const bool has_int8 = engine::FindLogitDigest(text, "int8", &want_int8);
    MIXQ_CHECK(has_int8 == info.lowered_int8)
        << "compiling process and this one disagree about the int8 plan";
    if (has_int8) {
      MIXQ_CHECK(want_int8 == int8_digest)
          << "int8 logits diverged from the compiling process";
    }
    std::printf("parity: logits bitwise identical to the compiling process\n");
  }

  // ---- serve traffic through every route -----------------------------------
  // Repeat full-graph query: served from the result cache, no forward.
  engine::PredictResponse repeat = submit({}, engine::Precision::kFp32);
  MIXQ_CHECK(repeat.cache_hit) << "repeat full-graph query should hit the cache";

  // Concurrent single-node clients: coalesced by the micro-batcher; each
  // gathered row must equal the full forward's row bitwise.
  const int64_t n = full.rows.rows();
  constexpr int kClients = 4, kRequestsPerClient = 8;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const int64_t node = (t * 151 + i * 7) % n;
        engine::PredictRequest request;
        request.model = "bundled";
        request.graph = "graph";
        request.node_ids = {node};
        request.precision = engine::Precision::kFp32;
        Result<engine::PredictResponse> response =
            serving.Submit(std::move(request)).get();
        if (!response.ok()) {
          ++mismatches[t];
          continue;
        }
        for (int64_t c = 0; c < full.rows.cols(); ++c) {
          if (response.ValueOrDie().rows.at(0, c) != full.rows.at(node, c)) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  for (int t = 0; t < kClients; ++t) {
    MIXQ_CHECK(mismatches[t] == 0) << "client " << t << " saw diverging rows";
  }

  engine::InferenceEngine::Stats stats = serving.GetStats();
  std::printf("served %lld requests (%lld failed): %lld forwards "
              "(%lld pruned), %lld cache hits\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.failures),
              static_cast<long long>(stats.batcher.forwards),
              static_cast<long long>(stats.batcher.pruned_forwards),
              static_cast<long long>(stats.batcher.cache_hits));
  std::printf("offline deployment OK: trained elsewhere, served here\n");
  return 0;
}
