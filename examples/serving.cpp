// Copyright 2026 MixQ-GNN Authors
// Serving a quantized GNN: the full three-layer API in one walkthrough.
//
//   1. SchemeRegistry — pick a quantization family by name ("mixq").
//   2. Experiment     — validated spec, bit-width search + quantized
//                       training, artifact kept for deployment.
//   3. engine         — CompileModel freezes weights + selected widths;
//                       InferenceEngine serves named models to concurrent
//                       callers and verifies experiment/serving parity.
//
//   ./examples/serving
#include <cstdio>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "engine/inference_engine.h"

using namespace mixq;

int main() {
  // ---- 1+2. Train a MixQ-quantized GCN through the facade -----------------
  CitationConfig config;
  config.name = "serving-citation";
  config.num_nodes = 600;
  config.num_classes = 4;
  config.feature_dim = 48;
  config.avg_degree = 3.0;
  config.homophily = 0.82;
  config.val_count = 120;
  config.test_count = 240;
  config.seed = 21;
  NodeDataset dataset = GenerateCitation(config);

  NodeExperimentConfig train_cfg;
  train_cfg.model = NodeModelKind::kGcn;
  train_cfg.hidden = 32;
  train_cfg.num_layers = 2;
  train_cfg.train.epochs = 60;
  train_cfg.train.lr = 0.02f;

  SchemeRef mixq = SchemeRef::MixQ(/*lambda=*/0.05, {2, 4, 8});
  mixq.params.SetInt("search_epochs", 40);

  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(dataset, train_cfg, mixq);
  spec.keep_artifact = true;  // hand the trained net to the engine below

  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  MIXQ_CHECK(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  MIXQ_CHECK(report.ok()) << report.status().ToString();
  const ExperimentReport& r = report.ValueOrDie();
  std::printf("experiment [%s]: test accuracy %.1f%%, %.2f avg bits, %.3f GBitOPs\n",
              r.scheme_label.c_str(), r.node.test_metric * 100.0, r.node.avg_bits,
              r.node.gbitops);

  // ---- 3a. Compile: freeze weights + bit assignment ------------------------
  Result<engine::CompiledModelPtr> compiled = engine::CompileModel(*r.artifact);
  MIXQ_CHECK(compiled.ok()) << compiled.status().ToString();
  const engine::CompiledModelInfo& info = compiled.ValueOrDie()->info();
  std::printf("\ncompiled model: %s — %lld params frozen, %.2f avg bits, "
              "%zu quantized components\n",
              info.scheme_label.c_str(), static_cast<long long>(info.param_count),
              info.avg_bits, info.bit_assignment.size());

  // ---- 3b. Serve it --------------------------------------------------------
  engine::InferenceEngine engine;
  MIXQ_CHECK(engine.RegisterModel("citation-mixq", compiled.ValueOrDie()).ok());

  // Parity check: the served logits are bitwise-identical to the eval-mode
  // forward the experiment measured.
  Result<Tensor> served =
      engine.Predict("citation-mixq", r.artifact->features, r.artifact->op);
  MIXQ_CHECK(served.ok()) << served.status().ToString();
  r.artifact->scheme->BeginStep(false);
  Tensor reference = r.artifact->gcn->Forward(r.artifact->features, r.artifact->op,
                                              r.artifact->scheme.get(), nullptr);
  MIXQ_CHECK(served.ValueOrDie().data() == reference.data())
      << "serving/experiment parity violated";
  std::printf("parity: engine Predict == eval-mode pipeline forward (bitwise)\n");

  // Concurrent traffic against the shared engine.
  constexpr int kThreads = 4, kRequestsPerThread = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        Result<Tensor> out =
            engine.Predict("citation-mixq", r.artifact->features, r.artifact->op);
        MIXQ_CHECK(out.ok()) << out.status().ToString();
      }
    });
  }
  for (auto& w : workers) w.join();

  engine::InferenceEngine::Stats stats = engine.GetStats();
  std::printf("\nserved %lld requests (%lld failed) across %zu model(s); "
              "'citation-mixq' handled %lld\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.failures), engine.ModelNames().size(),
              static_cast<long long>(stats.per_model["citation-mixq"]));
  return 0;
}
