// Copyright 2026 MixQ-GNN Authors
// Serving a quantized GNN: the full three-layer API in one walkthrough.
//
//   1. SchemeRegistry — pick a quantization family by name ("mixq").
//   2. Experiment     — validated spec, bit-width search + quantized
//                       training, artifact kept for deployment.
//   3. engine         — CompileModel freezes weights + selected widths;
//                       InferenceEngine pins named models AND named graphs,
//                       and serves Submit(PredictRequest) futures: requests
//                       carry only (model, graph, node_ids), concurrent
//                       single-node queries coalesce into one forward, and
//                       repeat queries on the static graph are cache hits.
//
//   ./examples/serving
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "engine/inference_engine.h"
#include "engine/stats_json.h"

using namespace mixq;

int main() {
  // ---- 1+2. Train a MixQ-quantized GCN through the facade -----------------
  CitationConfig config;
  config.name = "serving-citation";
  config.num_nodes = 600;
  config.num_classes = 4;
  config.feature_dim = 48;
  config.avg_degree = 3.0;
  config.homophily = 0.82;
  config.val_count = 120;
  config.test_count = 240;
  config.seed = 21;
  NodeDataset dataset = GenerateCitation(config);

  NodeExperimentConfig train_cfg;
  train_cfg.model = NodeModelKind::kGcn;
  train_cfg.hidden = 32;
  train_cfg.num_layers = 2;
  train_cfg.train.epochs = 60;
  train_cfg.train.lr = 0.02f;

  SchemeRef mixq = SchemeRef::MixQ(/*lambda=*/0.05, {2, 4, 8});
  mixq.params.SetInt("search_epochs", 40);

  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(dataset, train_cfg, mixq);
  spec.keep_artifact = true;  // hand the trained net to the engine below

  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  MIXQ_CHECK(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  MIXQ_CHECK(report.ok()) << report.status().ToString();
  const ExperimentReport& r = report.ValueOrDie();
  std::printf("experiment [%s]: test accuracy %.1f%%, %.2f avg bits, %.3f GBitOPs\n",
              r.scheme_label.c_str(), r.node.test_metric * 100.0, r.node.avg_bits,
              r.node.gbitops);

  // ---- 3a. Compile: freeze weights + bit assignment ------------------------
  Result<engine::CompiledModelPtr> compiled = engine::CompileModel(*r.artifact);
  MIXQ_CHECK(compiled.ok()) << compiled.status().ToString();
  engine::CompiledModelPtr model = compiled.ValueOrDie();
  const engine::CompiledModelInfo& info = model->info();
  std::printf("\ncompiled model: %s — %lld params frozen, %.2f avg bits, "
              "%zu quantized components\n",
              info.scheme_label.c_str(), static_cast<long long>(info.param_count),
              info.avg_bits, info.bit_assignment.size());

  // ---- 3b. Pin the model and the graph under names -------------------------
  engine::InferenceEngine serving;
  MIXQ_CHECK(serving.RegisterModel("citation-mixq", model).ok());
  MIXQ_CHECK(
      serving.RegisterGraph("citation", r.artifact->features, r.artifact->op).ok());

  // What an operator dashboard would poll: every pinned model and graph,
  // with the registry versions the result cache is keyed by.
  for (const auto& [name, m] : serving.ListModels()) {
    std::printf("registry: model '%s' v%llu — %s, %lld -> %lld, int8=%s\n",
                name.c_str(), static_cast<unsigned long long>(m.version),
                m.info.scheme_label.c_str(),
                static_cast<long long>(m.info.in_features),
                static_cast<long long>(m.info.out_dim),
                m.info.lowered_int8 ? "yes" : "no");
  }
  for (const auto& [name, g] : serving.ListGraphs()) {
    std::printf("registry: graph '%s' v%llu — %lld nodes, %lld nnz, "
                "row order %s\n",
                name.c_str(), static_cast<unsigned long long>(g.version),
                static_cast<long long>(g.nodes), static_cast<long long>(g.nnz),
                g.reordered ? "locality-reordered" : "as registered");
  }

  // Parity check #1: the legacy synchronous Predict still returns logits
  // bitwise-identical to the eval-mode forward the experiment measured.
  Result<Tensor> served =
      serving.Predict("citation-mixq", r.artifact->features, r.artifact->op);
  MIXQ_CHECK(served.ok()) << served.status().ToString();
  r.artifact->scheme->BeginStep(false);
  Tensor reference = r.artifact->gcn->Forward(r.artifact->features, r.artifact->op,
                                              r.artifact->scheme.get(), nullptr);
  MIXQ_CHECK(served.ValueOrDie().data() == reference.data())
      << "serving/experiment parity violated";
  std::printf("parity: engine Predict == eval-mode pipeline forward (bitwise)\n");

  // ---- 3c. Asynchronous traffic: Submit futures, no tensors per call -------
  // Concurrent clients each ask for ONE node's prediction. The micro-batcher
  // coalesces whatever queues up into a single forward and repeat queries on
  // the static graph are row gathers from the result cache.
  constexpr int kClients = 4, kRequestsPerClient = 8;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const int64_t node = (t * 151 + i * 7) % r.artifact->features.rows();
        engine::PredictRequest request;
        request.model = "citation-mixq";
        request.graph = "citation";
        request.node_ids = {node};
        request.precision = engine::Precision::kFp32;
        Result<engine::PredictResponse> response =
            serving.Submit(std::move(request)).get();
        MIXQ_CHECK(response.ok()) << response.status().ToString();
        // Parity check #2: the gathered row equals the full forward's row.
        const engine::PredictResponse& resp = response.ValueOrDie();
        for (int64_t c = 0; c < reference.cols(); ++c) {
          if (resp.rows.at(0, c) != reference.at(node, c)) ++mismatches[t];
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  for (int t = 0; t < kClients; ++t) {
    MIXQ_CHECK(mismatches[t] == 0) << "client " << t << " saw diverging rows";
  }
  std::printf("parity: every Submit row == full-forward row (bitwise)\n");

  // The same JSON the network stats endpoint serves (engine/stats_json.h):
  // engine-wide counters, batcher/breaker activity, and per-model latency
  // percentiles with forward time split by resolved precision — one grammar
  // for dashboards whether they scrape a process or a socket.
  std::printf("\nstats: %s\n",
              engine::FormatStatsJson(serving.GetStats()).c_str());
  return 0;
}
