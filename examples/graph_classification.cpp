// Copyright 2026 MixQ-GNN Authors
// Graph classification with a 5-layer quantized GIN: 3-fold cross-validation
// on a social-network-style dataset (IMDB-B analogue), comparing FP32,
// Degree-Quant INT4, and MixQ — the paper's Table-8 workload in miniature.
//
//   ./examples/graph_classification
#include <cstdio>

#include "core/experiment.h"

using namespace mixq;

int main() {
  // A structural graph-classification dataset: the class is planted via edge
  // density and clustering (degree one-hot features, as the paper does for
  // featureless TU datasets).
  GraphDataset dataset = ImdbBLike(/*seed=*/3, /*scale=*/0.08);
  std::printf("dataset: %s — %zu graphs, avg %.1f nodes / %.1f edges, %lld classes\n",
              dataset.name.c_str(), dataset.graphs.size(), dataset.AverageNodes(),
              dataset.AverageEdges(), static_cast<long long>(dataset.num_classes));

  GraphExperimentConfig config;
  config.hidden = 32;
  config.num_layers = 4;
  config.folds = 3;
  config.train.epochs = 35;
  config.train.lr = 0.01f;
  config.train.weight_decay = 0.0f;

  struct Entry {
    const char* label;
    SchemeRef scheme;
  };
  SchemeRef mixq = SchemeRef::MixQ(/*lambda=*/0.05, {4, 8});
  mixq.params.SetInt("search_epochs", 20);
  const Entry entries[] = {
      {"FP32", SchemeRef::Fp32()},
      {"DQ-INT4", SchemeRef::Dq(4)},
      {"MixQ {4,8}", mixq},
  };

  std::printf("\n%-12s %-16s %-10s %-10s\n", "method", "accuracy", "bits",
              "GBitOPs");
  for (const Entry& e : entries) {
    Result<Experiment> experiment = Experiment::Create(
        ExperimentSpec::GraphClassification(dataset, config, e.scheme));
    MIXQ_CHECK(experiment.ok()) << experiment.status().ToString();
    Result<ExperimentReport> report = experiment.ValueOrDie().Run();
    MIXQ_CHECK(report.ok()) << report.status().ToString();
    const GraphExperimentResult& r = report.ValueOrDie().graph;
    std::printf("%-12s %5.1f%% +- %4.1f%%  %-10.2f %-10.3f\n", e.label,
                r.mean * 100.0, r.stddev * 100.0, r.avg_bits, r.gbitops);
  }
  std::printf("\nGlobal max pooling keeps quantized aggregates in range (the "
              "paper's overflow-safe readout choice).\n");
  return 0;
}
