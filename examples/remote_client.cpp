// Copyright 2026 MixQ-GNN Authors
// Remote deployment: the offline_deploy story over TCP. A mixq_serve process
// (started from bundles, zero training code) is on the other end of the
// socket; this client proves the network adds nothing and loses nothing:
//
//   1. full-graph fp32 (and int8 when compiled) logits fetched remotely,
//      digests compared against the compiling process's digest file —
//      train once, serve ANYWHERE now includes "behind a wire";
//   2. a pipelined single-node load whose every returned row must equal the
//      full forward's row bitwise, and whose reported batch sizes show the
//      server coalesced concurrent remote requests into shared forwards;
//   3. the remote stats endpoint, printed for the CI log.
//
//   ./examples/remote_client HOST PORT MODEL GRAPH [model.digest]
//
// Exits non-zero on any parity or protocol failure — the CI net-smoke job
// is built on that.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "engine/model_bundle.h"
#include "net/client.h"

using namespace mixq;

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: %s HOST PORT MODEL GRAPH [model.digest]\n",
                 argv[0]);
    return 2;
  }
  const std::string host = argv[1];
  const int port = std::atoi(argv[2]);
  const std::string model = argv[3];
  const std::string graph = argv[4];

  auto connected = net::MixqClient::Connect(host, port);
  MIXQ_CHECK(connected.ok()) << connected.status().ToString();
  net::MixqClient client = connected.MoveValueOrDie();
  Status ping = client.Ping();
  MIXQ_CHECK(ping.ok()) << ping.ToString();
  std::printf("connected to %s:%d\n", host.c_str(), port);

  auto predict = [&](std::vector<int64_t> node_ids,
                     engine::Precision precision) {
    net::RemoteRequest request;
    request.model = model;
    request.graph = graph;
    request.node_ids = std::move(node_ids);
    request.precision = precision;
    auto response = client.Predict(request);
    MIXQ_CHECK(response.ok()) << response.status().ToString();
    return response.MoveValueOrDie();
  };

  // ---- cross-process parity over the wire ----------------------------------
  net::RemoteResponse full = predict({}, engine::Precision::kFp32);
  const std::vector<float>& logits = full.rows.data();
  const uint64_t fp32_digest =
      Fnv1a64(logits.data(), logits.size() * sizeof(float));
  std::printf("fp32 logits: %lld rows, %s",
              static_cast<long long>(full.rows.rows()),
              engine::FormatLogitDigestLine("digest fp32", fp32_digest).c_str());

  if (argc > 5) {
    std::vector<uint8_t> digest_bytes;
    Status read = ReadFileBytes(argv[5], &digest_bytes);
    MIXQ_CHECK(read.ok()) << read.ToString();
    const std::string text(digest_bytes.begin(), digest_bytes.end());
    uint64_t want = 0;
    MIXQ_CHECK(engine::FindLogitDigest(text, "fp32", &want))
        << "digest file has no fp32 line";
    MIXQ_CHECK(want == fp32_digest)
        << "remote fp32 logits diverged from the compiling process";
    if (engine::FindLogitDigest(text, "int8", &want)) {
      net::RemoteResponse quant = predict({}, engine::Precision::kInt8);
      const std::vector<float>& q = quant.rows.data();
      const uint64_t int8_digest = Fnv1a64(q.data(), q.size() * sizeof(float));
      std::printf("int8 logits: %lld rows, %s",
                  static_cast<long long>(quant.rows.rows()),
                  engine::FormatLogitDigestLine("digest int8", int8_digest)
                      .c_str());
      MIXQ_CHECK(want == int8_digest)
          << "remote int8 logits diverged from the compiling process";
    }
    std::printf("parity: remote logits bitwise identical to the compiling "
                "process\n");
  }

  // ---- pipelined load: coalescing + row-level parity -----------------------
  const int64_t n = full.rows.rows();
  constexpr int kRounds = 8, kPerRound = 32;
  int64_t batched = 0, singles = 0, served = 0;
  double batch_total = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<uint64_t> ids;
    std::vector<int64_t> nodes;
    for (int i = 0; i < kPerRound; ++i) {
      const int64_t node = (round * 151 + i * 7) % n;
      net::RemoteRequest request;
      request.model = model;
      request.graph = graph;
      request.node_ids = {node};
      request.precision = engine::Precision::kFp32;
      uint64_t id = 0;
      Status sent = client.Send(request, &id);
      MIXQ_CHECK(sent.ok()) << sent.ToString();
      ids.push_back(id);
      nodes.push_back(node);
    }
    for (int i = 0; i < kPerRound; ++i) {
      auto received = client.Receive();
      MIXQ_CHECK(received.ok()) << received.status().ToString();
      net::RemoteReply reply = received.MoveValueOrDie();
      MIXQ_CHECK(reply.request_id == ids[i]) << "replies out of order";
      MIXQ_CHECK(reply.status.ok()) << reply.status.ToString();
      for (int64_t c = 0; c < full.rows.cols(); ++c) {
        MIXQ_CHECK(reply.response.rows.at(0, c) == full.rows.at(nodes[i], c))
            << "remote row diverged from the full forward";
      }
      ++served;
      batch_total += static_cast<double>(reply.response.batch_size);
      if (reply.response.batch_size > 1) ++batched;
      else ++singles;
    }
  }
  const double avg_batch = batch_total / static_cast<double>(served);
  std::printf("pipelined load: %lld served, avg batch %.2f "
              "(%lld coalesced, %lld singles)\n",
              static_cast<long long>(served), avg_batch,
              static_cast<long long>(batched),
              static_cast<long long>(singles));
  MIXQ_CHECK(avg_batch > 1.0)
      << "pipelined remote requests were never coalesced";

  // ---- remote metrics ------------------------------------------------------
  auto stats = client.StatsJson();
  MIXQ_CHECK(stats.ok()) << stats.status().ToString();
  std::printf("stats: %s\n", stats.ValueOrDie().c_str());

  client.Close();
  std::printf("remote deployment OK: trained elsewhere, served over TCP\n");
  return 0;
}
